// Package assay provides the benchmark bioassays used in the paper's
// evaluation (Table 2): the real-world assays PCR, IVD and CPA, and seeded
// random assays RA30, RA70 and RA100.
//
// The paper does not publish its operation durations or the random DAGs, so
// durations here follow the flow-based-biochip literature (mixing takes tens
// of seconds) and the random assays are generated from fixed seeds with the
// published operation counts. Absolute makespans therefore differ from the
// paper's while ratios and trends are preserved; see EXPERIMENTS.md.
package assay

import (
	"fmt"
	"sort"

	"flowsyn/internal/seqgraph"
)

// Benchmark bundles a sequencing graph with the synthesis parameters the
// paper's Table 2 uses for it.
type Benchmark struct {
	// Graph is the assay's sequencing graph.
	Graph *seqgraph.Graph
	// Devices is the maximum number of devices allowed on the chip (an input
	// of the paper's problem formulation).
	Devices int
	// GridRows and GridCols give the connection-grid size G from Table 2.
	GridRows, GridCols int
	// Transport is u_c, the pure device-to-device transportation time in
	// seconds.
	Transport int
	// ModelIO routes reagent loading and product unloading through chip
	// boundary ports during architectural synthesis. It is enabled where
	// the schedule leaves routing headroom (the small real-world assays);
	// the dense random assays already saturate their grids with
	// inter-device traffic, and the paper models no I/O transport at all.
	ModelIO bool
}

// PCR returns the mixing phase of the polymerase chain reaction: eight input
// samples combined by seven mixing operations in a binary tree, exactly the
// sequencing graph of the paper's Fig. 2(a).
func PCR() *seqgraph.Graph {
	g := seqgraph.New("PCR")
	const mixTime = 40
	// Level 1: o1..o4 each mix two external inputs.
	o1 := g.MustAddOperation("o1", seqgraph.Mix, mixTime, 2)
	o2 := g.MustAddOperation("o2", seqgraph.Mix, mixTime, 2)
	o3 := g.MustAddOperation("o3", seqgraph.Mix, mixTime, 2)
	o4 := g.MustAddOperation("o4", seqgraph.Mix, mixTime, 2)
	// Level 2.
	o5 := g.MustAddOperation("o5", seqgraph.Mix, mixTime, 0)
	o6 := g.MustAddOperation("o6", seqgraph.Mix, mixTime, 0)
	// Level 3.
	o7 := g.MustAddOperation("o7", seqgraph.Mix, mixTime, 0)
	g.MustAddDependency(o1, o5)
	g.MustAddDependency(o2, o5)
	g.MustAddDependency(o3, o6)
	g.MustAddDependency(o4, o6)
	g.MustAddDependency(o5, o7)
	g.MustAddDependency(o6, o7)
	return g
}

// IVD returns the in-vitro diagnostics assay: four physiological samples
// (plasma, serum, urine, saliva) each assayed with three reagents (glucose,
// lactate, pyruvate), giving twelve independent mixing operations. This is
// the standard flow-based IVD benchmark with |O| = 12.
func IVD() *seqgraph.Graph {
	g := seqgraph.New("IVD")
	samples := []string{"plasma", "serum", "urine", "saliva"}
	tests := []struct {
		name     string
		duration int
	}{
		{"glucose", 45},
		{"lactate", 40},
		{"pyruvate", 50},
	}
	for _, s := range samples {
		for _, t := range tests {
			g.MustAddOperation(fmt.Sprintf("%s_%s", s, t.name), seqgraph.Mix, t.duration, 2)
		}
	}
	return g
}

// CPA returns the colorimetric protein assay with |O| = 55. Its published
// structure (a Bradford assay) is a serial-dilution binary tree whose leaf
// dilutions are mixed with reagent and combined for readout. The exact DAG
// is not published in the paper, so we build the canonical shape with the
// right operation count: a depth-4 dilution tree (31 dilutions), one reagent
// mix per leaf (16), and pairwise readout mixes (8) — 55 operations total.
func CPA() *seqgraph.Graph {
	g := seqgraph.New("CPA")
	const (
		diluteTime = 30
		mixTime    = 40
		readTime   = 25
	)
	// Depth-4 binary dilution tree: level k has 2^k nodes, k = 0..4 => 31.
	var levels [][]seqgraph.OpID
	for k := 0; k <= 4; k++ {
		var lvl []seqgraph.OpID
		for i := 0; i < 1<<k; i++ {
			inputs := 1 // buffer input at every dilution
			if k == 0 {
				inputs = 2 // sample + buffer at the root
			}
			id := g.MustAddOperation(fmt.Sprintf("dlt%d_%d", k, i), seqgraph.Dilute, diluteTime, inputs)
			lvl = append(lvl, id)
			if k > 0 {
				g.MustAddDependency(levels[k-1][i/2], id)
			}
		}
		levels = append(levels, lvl)
	}
	// One Bradford-reagent mix per leaf dilution (16 ops).
	var mixes []seqgraph.OpID
	for i, leaf := range levels[4] {
		id := g.MustAddOperation(fmt.Sprintf("rgt%d", i), seqgraph.Mix, mixTime, 1)
		g.MustAddDependency(leaf, id)
		mixes = append(mixes, id)
	}
	// Pairwise readout combinations (8 ops).
	for i := 0; i < len(mixes); i += 2 {
		id := g.MustAddOperation(fmt.Sprintf("read%d", i/2), seqgraph.Mix, readTime, 0)
		g.MustAddDependency(mixes[i], id)
		g.MustAddDependency(mixes[i+1], id)
	}
	return g
}

// registry maps benchmark names to their constructors and Table 2
// parameters. Devices follow the paper where stated (RA30's synthesized
// chip in Fig. 11 has five devices) and the literature's typical mixer
// counts otherwise. Grids follow the paper's Table 2 for the real assays;
// RA70 and RA100 get one extra row/column because our seeded random
// instances hold more simultaneous storage than the paper's unpublished
// ones (see DESIGN.md §3b.7).
var registry = map[string]func() Benchmark{
	"PCR": func() Benchmark {
		return Benchmark{Graph: PCR(), Devices: 1, GridRows: 4, GridCols: 4, Transport: 10, ModelIO: true}
	},
	"IVD": func() Benchmark {
		return Benchmark{Graph: IVD(), Devices: 2, GridRows: 4, GridCols: 4, Transport: 10, ModelIO: true}
	},
	"CPA": func() Benchmark {
		return Benchmark{Graph: CPA(), Devices: 4, GridRows: 4, GridCols: 4, Transport: 10}
	},
	"RA30": func() Benchmark {
		return Benchmark{Graph: Random(30, 5, 1), Devices: 5, GridRows: 4, GridCols: 4, Transport: 10}
	},
	"RA70": func() Benchmark {
		return Benchmark{Graph: Random(70, 8, 2), Devices: 5, GridRows: 5, GridCols: 5, Transport: 10}
	},
	"RA100": func() Benchmark {
		return Benchmark{Graph: Random(100, 12, 3), Devices: 6, GridRows: 7, GridCols: 7, Transport: 10}
	},
}

// Names returns the benchmark names in the paper's Table 2 order.
func Names() []string {
	return []string{"RA100", "RA70", "CPA", "RA30", "IVD", "PCR"}
}

// Get returns the named benchmark, or an error listing the valid names.
func Get(name string) (Benchmark, error) {
	ctor, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return Benchmark{}, fmt.Errorf("assay: unknown benchmark %q (have %v)", name, names)
	}
	return ctor(), nil
}

// MustGet is Get for known-constant names; it panics on error.
func MustGet(name string) Benchmark {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}
