package assay

import (
	"fmt"
	"math/rand"

	"flowsyn/internal/seqgraph"
)

// Random generates a seeded random assay with n operations, in the style of
// the paper's RA30/RA70/RA100 benchmarks. The graph is layered: operations
// are spread over roughly n/width levels and each non-root operation depends
// on one or two operations from strictly earlier levels (biased toward the
// immediately preceding level, as mixing trees are in practice). Durations
// are uniform in [30, 60] seconds. The same (n, width, seed) triple always
// yields the same graph.
func Random(n, width int, seed int64) *seqgraph.Graph {
	if n <= 0 {
		panic(fmt.Sprintf("assay.Random: n must be positive, got %d", n))
	}
	if width <= 0 {
		width = 1
	}
	r := rand.New(rand.NewSource(seed))
	g := seqgraph.New(fmt.Sprintf("RA%d", n))

	// Assign operations to levels: every level holds between 1 and width
	// operations, chosen randomly, until n are placed.
	var levels [][]seqgraph.OpID
	placed := 0
	for placed < n {
		k := 1 + r.Intn(width)
		if placed+k > n {
			k = n - placed
		}
		var lvl []seqgraph.OpID
		for i := 0; i < k; i++ {
			dur := 30 + r.Intn(31)
			inputs := 0
			if len(levels) == 0 {
				inputs = 2 // roots mix two external fluids
			}
			id := g.MustAddOperation(fmt.Sprintf("o%d", placed+1), seqgraph.Mix, dur, inputs)
			lvl = append(lvl, id)
			placed++
		}
		levels = append(levels, lvl)
	}

	// Wire dependencies: each non-root op has 1 or 2 parents; the first
	// parent comes from the previous level (keeping levels meaningful), any
	// second parent from a uniformly random earlier level. Fan-out per
	// parent is capped at maxFanOut: one fluid product physically splits
	// into a few sub-samples at most, and bioassay sequencing graphs in the
	// literature are close to trees.
	const maxFanOut = 3
	childCount := make(map[seqgraph.OpID]int)
	pick := func(cands []seqgraph.OpID) seqgraph.OpID {
		var open []seqgraph.OpID
		for _, c := range cands {
			if childCount[c] < maxFanOut {
				open = append(open, c)
			}
		}
		if len(open) == 0 {
			open = cands
		}
		return open[r.Intn(len(open))]
	}
	for li := 1; li < len(levels); li++ {
		prev := levels[li-1]
		for _, id := range levels[li] {
			p1 := pick(prev)
			g.MustAddDependency(p1, id)
			childCount[p1]++
			// A third of the operations mix two intermediate products; the
			// rest mix one product with a fresh buffer input. The second
			// parent comes from a nearby level: real protocols consume
			// intermediates promptly (long-lived intermediates degrade), and
			// this keeps storage lifetimes in the range the paper's
			// benchmarks exhibit.
			if r.Intn(3) == 0 {
				lo := li - 2
				if lo < 0 {
					lo = 0
				}
				p2 := pick(levels[lo+r.Intn(li-lo)])
				if p2 != p1 {
					g.MustAddDependency(p2, id)
					childCount[p2]++
				}
			}
		}
	}
	return g
}
