package assay

import (
	"testing"

	"flowsyn/internal/seqgraph"
)

func TestPCRStructure(t *testing.T) {
	g := PCR()
	if g.NumOps() != 7 {
		t.Fatalf("|O| = %d, want 7", g.NumOps())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("|E| = %d, want 6", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The PCR mixing tree has 4 roots (o1..o4) and one sink (o7).
	if roots := g.Roots(); len(roots) != 4 {
		t.Errorf("roots = %v, want 4", roots)
	}
	if sinks := g.Sinks(); len(sinks) != 1 || g.Op(sinks[0]).Name != "o7" {
		t.Errorf("sinks = %v, want [o7]", sinks)
	}
	// External inputs total 8 (i1..i8 of Fig. 2).
	total := 0
	for _, op := range g.Operations() {
		total += op.Inputs
	}
	if total != 8 {
		t.Errorf("external inputs = %d, want 8", total)
	}
	// Three levels.
	_, n, err := g.Levels()
	if err != nil || n != 3 {
		t.Errorf("levels = %d (%v), want 3", n, err)
	}
}

func TestIVDStructure(t *testing.T) {
	g := IVD()
	if g.NumOps() != 12 {
		t.Fatalf("|O| = %d, want 12", g.NumOps())
	}
	if g.NumEdges() != 0 {
		t.Errorf("IVD operations are independent; edges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCPAStructure(t *testing.T) {
	g := CPA()
	if g.NumOps() != 55 {
		t.Fatalf("|O| = %d, want 55", g.NumOps())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth: 5 dilution levels + reagent mix + readout = 7 levels.
	_, n, err := g.Levels()
	if err != nil || n != 7 {
		t.Errorf("levels = %d (%v), want 7", n, err)
	}
	if sinks := g.Sinks(); len(sinks) != 8 {
		t.Errorf("readout sinks = %d, want 8", len(sinks))
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(30, 5, 1)
	b := Random(30, 5, 1)
	if a.NumOps() != 30 || b.NumOps() != 30 {
		t.Fatalf("op counts = %d, %d; want 30", a.NumOps(), b.NumOps())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumOps(); i++ {
		if a.Op(seqgraph.OpID(i)).Duration != b.Op(seqgraph.OpID(i)).Duration {
			t.Fatalf("same seed produced different durations at op %d", i)
		}
	}
	c := Random(30, 5, 99)
	if c.NumEdges() == a.NumEdges() && c.Op(0).Duration == a.Op(0).Duration &&
		c.Op(1).Duration == a.Op(1).Duration && c.Op(2).Duration == a.Op(2).Duration {
		t.Error("different seeds suspiciously identical")
	}
}

func TestRandomValidity(t *testing.T) {
	for _, n := range []int{1, 2, 10, 30, 70, 100} {
		g := Random(n, 5, 42)
		if g.NumOps() != n {
			t.Errorf("Random(%d): |O| = %d", n, g.NumOps())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Random(%d): %v", n, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	wantOps := map[string]int{
		"PCR": 7, "IVD": 12, "CPA": 55, "RA30": 30, "RA70": 70, "RA100": 100,
	}
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if b.Graph.NumOps() != wantOps[name] {
			t.Errorf("%s: |O| = %d, want %d", name, b.Graph.NumOps(), wantOps[name])
		}
		if b.Devices <= 0 || b.GridRows < 2 || b.GridCols < 2 || b.Transport <= 0 {
			t.Errorf("%s: implausible parameters %+v", name, b)
		}
		if err := b.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Get("NOPE"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(Names()) != 6 {
		t.Errorf("Names() = %v, want 6 entries", Names())
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic for unknown name")
		}
	}()
	MustGet("NOPE")
}
