package dedicated

import (
	"testing"
	"testing/quick"

	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

func scheduleFor(t *testing.T, name string) *sched.Schedule {
	t.Helper()
	b := assay.MustGet(name)
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{
		Devices: b.Devices, Transport: b.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUnitValves(t *testing.T) {
	cases := map[int]int{0: 0, 1: 2, 2: 6, 3: 10, 4: 10, 8: 14, 16: 18}
	for cells, want := range cases {
		if got := UnitValves(cells); got != want {
			t.Errorf("UnitValves(%d) = %d, want %d", cells, got, want)
		}
	}
}

func TestExecuteNeverFaster(t *testing.T) {
	for _, name := range assay.Names() {
		s := scheduleFor(t, name)
		res, err := Execute(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan < s.Makespan {
			t.Errorf("%s: dedicated makespan %d beats distributed %d — the unit should never win",
				name, res.Makespan, s.Makespan)
		}
	}
}

func TestExecutePreservesPrecedence(t *testing.T) {
	s := scheduleFor(t, "PCR")
	res, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph
	for _, e := range g.Edges() {
		pEnd := res.Starts[e.Parent] + g.Op(e.Parent).Duration
		if res.Starts[e.Child] < pEnd {
			t.Errorf("edge %d->%d: child starts %d before parent ends %d",
				e.Parent, e.Child, res.Starts[e.Child], pEnd)
		}
	}
}

func TestExecuteCountsAccesses(t *testing.T) {
	s := scheduleFor(t, "PCR")
	res, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 {
		t.Error("PCR on one mixer must access the storage unit")
	}
	if res.PortBusy != res.Accesses*s.Transport {
		t.Errorf("port busy %d != accesses %d × uc %d", res.PortBusy, res.Accesses, s.Transport)
	}
	if res.Cells < 1 {
		t.Error("unit needs at least one cell")
	}
}

func TestCompareRatiosBelowOne(t *testing.T) {
	// Fig. 10: for assays with storage traffic, both ratios are <= 1.
	for _, name := range []string{"PCR", "RA30", "RA100"} {
		s := scheduleFor(t, name)
		c, err := Compare(s, 40)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.ExecRatio > 1.0001 {
			t.Errorf("%s: exec ratio %.3f > 1", name, c.ExecRatio)
		}
		if c.ValveRatio >= 1 {
			t.Errorf("%s: valve ratio %.3f >= 1", name, c.ValveRatio)
		}
	}
}

func TestPortSerialization(t *testing.T) {
	var l intervalList
	a := l.grant(0, 10)
	b := l.grant(0, 10)
	c := l.grant(5, 10)
	if a != 0 || b != 10 || c != 20 {
		t.Errorf("grants = %d,%d,%d; want 0,10,20", a, b, c)
	}
	// Zero-length grants are free.
	if l.grant(3, 0) != 3 {
		t.Error("zero-length grant should return its requested time")
	}
}

// TestExecuteProperty: dedicated execution is always valid (precedence and
// non-overlap per device) and never faster than distributed, on random
// assays.
func TestExecuteProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := assay.Random(5+int(seed%11+11)%11, 3, seed)
		s, err := sched.ListSchedule(g, sched.ListOptions{Devices: 2, Transport: 8, Mode: sched.TimeAndStorage})
		if err != nil {
			return false
		}
		res, err := Execute(s)
		if err != nil {
			return false
		}
		if res.Makespan < s.Makespan {
			return false
		}
		for _, e := range g.Edges() {
			pEnd := res.Starts[e.Parent] + g.Op(e.Parent).Duration
			if res.Starts[e.Child] < pEnd {
				return false
			}
		}
		return res.QueueDelay >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
