package dedicated

import (
	"reflect"
	"testing"
	"testing/quick"

	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

func scheduleFor(t *testing.T, name string) *sched.Schedule {
	t.Helper()
	b := assay.MustGet(name)
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{
		Devices: b.Devices, Transport: b.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUnitValves(t *testing.T) {
	cases := map[int]int{0: 0, 1: 2, 2: 6, 3: 10, 4: 10, 8: 14, 16: 18}
	for cells, want := range cases {
		if got := UnitValves(cells); got != want {
			t.Errorf("UnitValves(%d) = %d, want %d", cells, got, want)
		}
	}
}

func TestExecuteNeverFaster(t *testing.T) {
	for _, name := range assay.Names() {
		s := scheduleFor(t, name)
		res, err := Execute(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan < s.Makespan {
			t.Errorf("%s: dedicated makespan %d beats distributed %d — the unit should never win",
				name, res.Makespan, s.Makespan)
		}
	}
}

func TestExecutePreservesPrecedence(t *testing.T) {
	s := scheduleFor(t, "PCR")
	res, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph
	for _, e := range g.Edges() {
		pEnd := res.Starts[e.Parent] + g.Op(e.Parent).Duration
		if res.Starts[e.Child] < pEnd {
			t.Errorf("edge %d->%d: child starts %d before parent ends %d",
				e.Parent, e.Child, res.Starts[e.Child], pEnd)
		}
	}
}

func TestExecuteCountsAccesses(t *testing.T) {
	s := scheduleFor(t, "PCR")
	res, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 {
		t.Error("PCR on one mixer must access the storage unit")
	}
	if res.PortBusy != res.Accesses*s.Transport {
		t.Errorf("port busy %d != accesses %d × uc %d", res.PortBusy, res.Accesses, s.Transport)
	}
	if res.Cells < 1 {
		t.Error("unit needs at least one cell")
	}
}

func TestCompareRatiosBelowOne(t *testing.T) {
	// Fig. 10: for assays with storage traffic, both ratios are <= 1.
	for _, name := range []string{"PCR", "RA30", "RA100"} {
		s := scheduleFor(t, name)
		c, err := Compare(s, 40)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.ExecRatio > 1.0001 {
			t.Errorf("%s: exec ratio %.3f > 1", name, c.ExecRatio)
		}
		if c.ValveRatio >= 1 {
			t.Errorf("%s: valve ratio %.3f >= 1", name, c.ValveRatio)
		}
	}
}

func TestPortSerialization(t *testing.T) {
	var l intervalList
	a := l.grant(0, 10)
	b := l.grant(0, 10)
	c := l.grant(5, 10)
	if a != 0 || b != 10 || c != 20 {
		t.Errorf("grants = %d,%d,%d; want 0,10,20", a, b, c)
	}
	// Zero-length grants are free.
	if l.grant(3, 0) != 3 {
		t.Error("zero-length grant should return its requested time")
	}
}

// handSchedule builds a schedule directly from (device, start, end) triples
// so port-model edge cases can be pinned down without a scheduler in the way.
func handSchedule(t *testing.T, g *seqgraph.Graph, devices, transport int, asg []sched.Assignment) *sched.Schedule {
	t.Helper()
	s := &sched.Schedule{
		Graph:       g,
		Devices:     devices,
		Transport:   transport,
		Assignments: asg,
	}
	for _, a := range asg {
		if a.End > s.Makespan {
			s.Makespan = a.End
		}
	}
	return s
}

func mustOp(t *testing.T, g *seqgraph.Graph, name string, dur int) seqgraph.OpID {
	t.Helper()
	id, err := g.AddOperation(name, seqgraph.Mix, dur, 2)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestExecuteEdgeCases pins the port model's edge cases with hand-built
// schedules: a zero-resident schedule reports 0 cells and 0 unit valves, a
// store and a fetch requested at the same instant serialize in the fixed
// flush-before-fetch order, and two fetches contending for the same instant
// serialize in OpID order with the loser charged the queue delay.
func TestExecuteEdgeCases(t *testing.T) {
	t.Run("zero-resident chain", func(t *testing.T) {
		// A single-device chain consumes every result directly: the unit is
		// never touched, so it needs no cells and costs no valves.
		g := seqgraph.New("chain")
		o0 := mustOp(t, g, "o0", 10)
		o1 := mustOp(t, g, "o1", 7)
		if err := g.AddDependency(o0, o1); err != nil {
			t.Fatal(err)
		}
		s := handSchedule(t, g, 1, 4, []sched.Assignment{
			{Op: o0, Device: 0, Start: 0, End: 10},
			{Op: o1, Device: 0, Start: 10, End: 17},
		})
		res, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accesses != 0 || res.Cells != 0 || res.UnitValves != 0 || res.QueueDelay != 0 {
			t.Errorf("zero-resident chain: accesses=%d cells=%d unitValves=%d queue=%d, want all 0",
				res.Accesses, res.Cells, res.UnitValves, res.QueueDelay)
		}
		if res.Makespan != 17 {
			t.Errorf("makespan = %d, want 17 (direct consumption pays no transport)", res.Makespan)
		}
	})

	t.Run("simultaneous store+fetch serializes flush first", func(t *testing.T) {
		// Device 0 finishes o0 (displaced, flushed at t=10) exactly when o1's
		// cross-device result becomes fetchable (end 6 + u_c 4 = 10). Both
		// want the port at t=10; the replay always places the flush first, so
		// the store takes [10,14), the fetch [14,18), and o2 starts at 18.
		g := seqgraph.New("simul")
		o0 := mustOp(t, g, "o0", 10)
		o1 := mustOp(t, g, "o1", 6)
		o2 := mustOp(t, g, "o2", 5)
		if err := g.AddDependency(o1, o2); err != nil {
			t.Fatal(err)
		}
		s := handSchedule(t, g, 2, 4, []sched.Assignment{
			{Op: o0, Device: 0, Start: 0, End: 10},
			{Op: o1, Device: 1, Start: 0, End: 6},
			{Op: o2, Device: 0, Start: 10, End: 15},
		})
		first, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if first.Accesses != 2 || first.PortBusy != 8 {
			t.Errorf("accesses=%d portBusy=%d, want 2 accesses busy 8", first.Accesses, first.PortBusy)
		}
		if got := first.Starts[o2]; got != 18 {
			t.Errorf("o2 starts at %d, want 18 (flush [10,14) then fetch [14,18))", got)
		}
		// o1's fluid waits in the unit [10,14); o0's flushed result sits in
		// its cell from 14 to the end of the replay. The intervals never
		// overlap, so one cell suffices.
		if first.Cells != 1 || first.UnitValves != UnitValves(1) {
			t.Errorf("cells=%d unitValves=%d, want 1 cell / %d valves", first.Cells, first.UnitValves, UnitValves(1))
		}
		// Deterministic: a replay of the same schedule reproduces every field.
		second, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("two replays disagree: %+v vs %+v", first, second)
		}
	})

	t.Run("simultaneous fetches queue in OpID order", func(t *testing.T) {
		// Two consumers on idle devices want their parents at the same
		// instant (both fetchable at 10+4=14). The replay walks operations in
		// original-start order with OpID ties, so o2 wins the port ([14,18))
		// and o3 queues — 4 s of charged delay, fetch [18,22).
		g := seqgraph.New("contend")
		o0 := mustOp(t, g, "o0", 10)
		o1 := mustOp(t, g, "o1", 10)
		o2 := mustOp(t, g, "o2", 5)
		o3 := mustOp(t, g, "o3", 5)
		if err := g.AddDependency(o0, o2); err != nil {
			t.Fatal(err)
		}
		if err := g.AddDependency(o1, o3); err != nil {
			t.Fatal(err)
		}
		s := handSchedule(t, g, 4, 4, []sched.Assignment{
			{Op: o0, Device: 0, Start: 0, End: 10},
			{Op: o1, Device: 1, Start: 0, End: 10},
			{Op: o2, Device: 2, Start: 10, End: 15},
			{Op: o3, Device: 3, Start: 10, End: 15},
		})
		res, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Starts[o2]; got != 18 {
			t.Errorf("o2 starts at %d, want 18 (its fetch won the port)", got)
		}
		if got := res.Starts[o3]; got != 22 {
			t.Errorf("o3 starts at %d, want 22 (its fetch queued behind o2's)", got)
		}
		if res.QueueDelay != 4 {
			t.Errorf("queue delay = %d, want 4 (one full port window)", res.QueueDelay)
		}
	})
}

// TestExecuteProperty: dedicated execution is always valid (precedence and
// non-overlap per device) and never faster than distributed, on random
// assays.
func TestExecuteProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := assay.Random(5+int(seed%11+11)%11, 3, seed)
		s, err := sched.ListSchedule(g, sched.ListOptions{Devices: 2, Transport: 8, Mode: sched.TimeAndStorage})
		if err != nil {
			return false
		}
		res, err := Execute(s)
		if err != nil {
			return false
		}
		if res.Makespan < s.Makespan {
			return false
		}
		for _, e := range g.Edges() {
			pEnd := res.Starts[e.Parent] + g.Op(e.Parent).Duration
			if res.Starts[e.Child] < pEnd {
				return false
			}
		}
		return res.QueueDelay >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
