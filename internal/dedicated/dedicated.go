// Package dedicated models the baseline the paper compares against in
// Fig. 10: a chip whose intermediate fluids are parked in a dedicated
// storage unit (Fig. 1(c) and Fig. 3(a)) instead of distributed channel
// segments.
//
// The unit has side-by-side storage cells behind a multiplexer-like port.
// The port is the bottleneck: it admits one fluid at a time, so simultaneous
// store/fetch accesses queue and the assay's execution is prolonged —
// exactly the paper's experimental assumption ("when storage requirements
// appear, they are assumed to queue at the entrance of a dedicated storage
// unit"). Store and fetch accesses also pay the full device↔unit transport
// time u_c, whereas distributed caching pays only the on-the-spot move-out
// and fetch halves.
package dedicated

import (
	"fmt"
	"math"
	"sort"

	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// UnitValves returns the valve cost of a dedicated storage unit with the
// given number of cells: two log₂-depth multiplexer trees (one per side of
// the cell array, as in the paper's Fig. 1(c)) at two valves per tree level,
// plus the two port valves.
func UnitValves(cells int) int {
	if cells < 1 {
		return 0
	}
	if cells == 1 {
		return 2
	}
	levels := int(math.Ceil(math.Log2(float64(cells))))
	return 4*levels + 2
}

// Result reports the dedicated-storage execution of a schedule.
type Result struct {
	// Makespan is the prolonged execution time with port queueing.
	Makespan int
	// PortBusy is the total seconds the unit's port was occupied.
	PortBusy int
	// QueueDelay is the total seconds accesses waited for the port.
	QueueDelay int
	// Cells is the storage-cell count the unit needed (max simultaneous
	// residents).
	Cells int
	// UnitValves is the valve cost of the unit itself.
	UnitValves int
	// Accesses counts port uses (stores + fetches).
	Accesses int
	// Starts holds the re-timed start of every operation, indexed by OpID.
	Starts []int
}

// intervalList tracks booked port windows in non-decreasing grant order.
type intervalList struct {
	windows [][2]int
}

// grant books the earliest window of the given length starting at or after
// t, returning its start time. Booking order follows simulation order, so a
// simple scan suffices.
func (l *intervalList) grant(t, length int) int {
	if length <= 0 {
		return t
	}
	for {
		conflict := false
		for _, w := range l.windows {
			if t < w[1] && w[0] < t+length {
				conflict = true
				if w[1] > t {
					t = w[1]
				}
			}
		}
		if !conflict {
			l.windows = append(l.windows, [2]int{t, t + length})
			return t
		}
	}
}

// Execute re-times the given schedule as if all cached fluids lived in a
// dedicated storage unit: same binding, same per-device operation order,
// but every store and every fetch is a full-u_c transport that must win the
// unit's single port. The returned makespan is therefore never smaller than
// the distributed schedule's.
//
// Determinism of simultaneous accesses: the replay processes operations in
// original start order (ties by OpID), places each operation's flush before
// its fetches, and walks fetches in the graph's parent order. A store and a
// fetch requested at the same instant therefore serialize in that fixed
// order through the earliest-fit port grants — two replays of the same
// schedule always produce identical timings.
//
// Cell accounting tracks actual unit residency during the replay: a fluid
// occupies a cell from the instant it arrives in the unit until its last
// fetch departs (or the makespan, for flushed fluids nobody fetches). A
// schedule with no stored fluids therefore reports 0 cells and 0 unit
// valves.
func Execute(s *sched.Schedule) (*Result, error) {
	g := s.Graph
	n := g.NumOps()
	if n == 0 {
		return nil, fmt.Errorf("dedicated: empty schedule")
	}
	uc := s.Transport

	// Process operations in original start order (preserving per-device
	// sequences), re-timing with port serialization.
	order := make([]seqgraph.OpID, n)
	for i := range order {
		order[i] = seqgraph.OpID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := s.Start(order[a]), s.Start(order[b])
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})

	var prt intervalList
	res := &Result{Starts: make([]int, n)}
	deviceFree := make([]int, s.Devices)
	lastOp := make([]seqgraph.OpID, s.Devices)
	for d := range lastOp {
		lastOp[d] = -1
	}
	end := make([]int, n)
	done := make([]bool, n)
	pending := append([]seqgraph.OpID(nil), order...)

	// Unit residency per product: enter is the instant the fluid arrives in
	// its cell, exit the instant its last fetch departs.
	type residency struct {
		enter, exit      int
		entered, fetched bool
	}
	resid := make([]residency, n)

	for len(pending) > 0 {
		pick := -1
		for idx, op := range pending {
			ready := true
			for _, p := range g.Parents(op) {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				pick = idx
				break
			}
		}
		op := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		k := s.Device(op)
		start := deviceFree[k]

		// Flush the previous result on this device into the unit unless the
		// current op consumes it directly.
		direct := seqgraph.OpID(-1)
		if last := lastOp[k]; last >= 0 {
			for _, p := range g.Parents(op) {
				if p == last {
					direct = p
					break
				}
			}
			if direct < 0 {
				grantT := prt.grant(end[last], uc)
				res.PortBusy += uc
				res.QueueDelay += grantT - end[last]
				res.Accesses++
				if v := grantT + uc; v > start {
					start = v
				}
				if r := &resid[last]; !r.entered {
					r.entered = true
					r.enter = grantT + uc
				}
			}
		}

		// Fetch every non-direct parent from the unit through the port.
		for _, p := range g.Parents(op) {
			if p == direct {
				if end[p] > start {
					start = end[p]
				}
				continue
			}
			earliest := end[p]
			if s.Device(p) != k {
				// Result first travels from its device into the unit.
				earliest += uc
			}
			// A fetch delivers fluid into the device, so it can only start
			// once the device is empty and idle.
			if earliest < start {
				earliest = start
			}
			grantT := prt.grant(earliest, uc)
			res.PortBusy += uc
			res.QueueDelay += grantT - earliest
			res.Accesses++
			if v := grantT + uc; v > start {
				start = v
			}
			r := &resid[p]
			if !r.entered {
				// Never flushed: the fluid traveled straight from its device
				// into the unit after its producer finished.
				r.entered = true
				r.enter = end[p] + uc
			}
			r.fetched = true
			if grantT > r.exit {
				r.exit = grantT
			}
		}

		dur := g.Op(op).Duration
		res.Starts[op] = start
		end[op] = start + dur
		deviceFree[k] = end[op]
		lastOp[k] = op
		done[op] = true
		if end[op] > res.Makespan {
			res.Makespan = end[op]
		}
	}

	// Peak simultaneous residents over the tracked residency intervals. A
	// flushed fluid nobody fetches (a displaced final product) occupies its
	// cell until the end of the replay.
	type event struct{ t, delta int }
	var evs []event
	for i := range resid {
		r := resid[i]
		if !r.entered {
			continue
		}
		exit := r.exit
		if !r.fetched {
			exit = res.Makespan
		}
		if exit <= r.enter {
			// A fetch the port happened to grant before the fluid's arrival
			// window: the model's store side never held it, so it occupies
			// no cell.
			continue
		}
		evs = append(evs, event{r.enter, +1}, event{exit, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // exits before entries at ties
	})
	cur := 0
	for _, e := range evs {
		cur += e.delta
		if cur > res.Cells {
			res.Cells = cur
		}
	}
	res.UnitValves = UnitValves(res.Cells)
	return res, nil
}

// Comparison bundles the Fig. 10 ratios for one assay: distributed channel
// storage (the paper's method) versus the dedicated storage unit.
type Comparison struct {
	// DistributedMakespan and DedicatedMakespan are the two execution times.
	DistributedMakespan, DedicatedMakespan int
	// DistributedValves counts the synthesized chip's valves;
	// DedicatedValves adds the unit's internal valves to the transport
	// valves the dedicated design still needs.
	DistributedValves, DedicatedValves int
	// ExecRatio = distributed / dedicated (< 1 means the paper's method is
	// faster); ValveRatio likewise.
	ExecRatio, ValveRatio float64
}

// Compare computes the Fig. 10 ratios given the distributed design's valve
// count and the schedule both designs execute.
func Compare(s *sched.Schedule, distributedValves int) (*Comparison, error) {
	ded, err := Execute(s)
	if err != nil {
		return nil, err
	}
	// The dedicated design still needs channels from every device to the
	// unit; its transport valve cost is at least the distributed network's
	// (the unit does not remove any device-to-device path, it adds the
	// unit's port fan-in). We charge the same transport valves plus the
	// unit's internals — a deliberately conservative baseline.
	c := &Comparison{
		DistributedMakespan: s.Makespan,
		DedicatedMakespan:   ded.Makespan,
		DistributedValves:   distributedValves,
		DedicatedValves:     distributedValves + ded.UnitValves,
	}
	if ded.Makespan > 0 {
		c.ExecRatio = float64(s.Makespan) / float64(ded.Makespan)
	}
	if c.DedicatedValves > 0 {
		c.ValveRatio = float64(c.DistributedValves) / float64(c.DedicatedValves)
	}
	return c, nil
}
