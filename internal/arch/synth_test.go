package arch

import (
	"testing"
	"testing/quick"

	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

func scheduleFor(t *testing.T, name string) (*sched.Schedule, assay.Benchmark) {
	t.Helper()
	b := assay.MustGet(name)
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{
		Devices: b.Devices, Transport: b.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

func synthesizeBenchmark(t *testing.T, name string) (*Result, *sched.Schedule) {
	t.Helper()
	s, b := scheduleFor(t, name)
	grid, err := NewGrid(b.GridRows, b.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(s, grid, Options{ModelIO: b.ModelIO})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res, s
}

func TestSynthesizeAllBenchmarks(t *testing.T) {
	for _, name := range assay.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, s := synthesizeBenchmark(t, name)
			if err := res.Validate(); err != nil {
				t.Fatalf("invalid architecture: %v", err)
			}
			wantRoutes := len(s.Tasks())
			wantPorts := 0
			if assay.MustGet(name).ModelIO {
				wantRoutes += len(s.IOTasks(s.Devices, s.Devices+1))
				wantPorts = 2
			}
			if len(res.Routes) != wantRoutes {
				t.Errorf("routes = %d, tasks = %d", len(res.Routes), wantRoutes)
			}
			if res.Ports != wantPorts || len(res.DevicePos) != s.Devices+wantPorts {
				t.Errorf("expected %d I/O ports, got %d (placements %d)", wantPorts, res.Ports, len(res.DevicePos))
			}
			if res.NumEdges == 0 && len(s.Tasks()) > 0 {
				t.Error("no edges used despite transport tasks")
			}
			// Fig 8: all ratios strictly below 1.
			if res.EdgeRatio >= 1 || res.ValveRatio >= 1 {
				t.Errorf("ratios not below 1: edge %.2f valve %.2f", res.EdgeRatio, res.ValveRatio)
			}
			if res.NumEdges > res.Grid.NumEdges() {
				t.Error("more used edges than grid edges")
			}
		})
	}
}

func TestExpectedTasksMatchesRoutedWorkload(t *testing.T) {
	for _, name := range assay.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, s := synthesizeBenchmark(t, name)
			tasks := ExpectedTasks(s, res.Ports)
			if len(tasks) != len(res.Routes) {
				t.Fatalf("ExpectedTasks returns %d tasks, synthesis routed %d", len(tasks), len(res.Routes))
			}
			for i, task := range tasks {
				if res.Routes[i].Task != task {
					t.Fatalf("task %d: expected %v, routed %v", i, task, res.Routes[i].Task)
				}
			}
			// Without ports the workload is exactly the internal task list.
			if res.Ports == 0 {
				internal := s.Tasks()
				for i, task := range tasks {
					if internal[i] != task {
						t.Fatalf("portless task %d diverges from Schedule.Tasks", i)
					}
				}
			}
		})
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, _ := synthesizeBenchmark(t, "RA30")
	b, _ := synthesizeBenchmark(t, "RA30")
	if a.NumEdges != b.NumEdges || a.NumValves != b.NumValves {
		t.Errorf("non-deterministic synthesis: (%d,%d) vs (%d,%d)",
			a.NumEdges, a.NumValves, b.NumEdges, b.NumValves)
	}
	for i := range a.DevicePos {
		if a.DevicePos[i] != b.DevicePos[i] {
			t.Errorf("placement differs at device %d", i)
		}
	}
}

func TestValveAccounting(t *testing.T) {
	res, _ := synthesizeBenchmark(t, "PCR")
	// Valves are between 1 and 2 per used edge (endpoints at devices are
	// excluded).
	if res.NumValves > 2*res.NumEdges {
		t.Errorf("valves %d exceed 2 per edge (%d edges)", res.NumValves, res.NumEdges)
	}
	if res.NumValves <= 0 {
		t.Errorf("no valves counted")
	}
}

func TestPlacementStrategies(t *testing.T) {
	s, b := scheduleFor(t, "RA30")
	grid, _ := NewGrid(b.GridRows, b.GridCols)
	for _, strat := range []PlacementStrategy{CommWeighted, RowMajor} {
		res, err := Synthesize(s, grid, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := res.Validate(); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	grid, _ := NewGrid(2, 2)
	if _, err := Place(grid, 0, nil, CommWeighted); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := Place(grid, 3, nil, CommWeighted); err == nil {
		t.Error("overfull grid accepted")
	}
}

func TestPlaceDistinctNodes(t *testing.T) {
	grid, _ := NewGrid(4, 4)
	s, _ := scheduleFor(t, "RA30")
	pos, err := Place(grid, 5, s.Tasks(), CommWeighted)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	for _, p := range pos {
		if seen[p] {
			t.Fatalf("two devices on node %d", p)
		}
		seen[p] = true
	}
}

func TestFixedPlacement(t *testing.T) {
	s, b := scheduleFor(t, "IVD")
	grid, _ := NewGrid(b.GridRows, b.GridCols)
	fixed := []NodeID{grid.Node(1, 1), grid.Node(2, 2)}
	res, err := Synthesize(s, grid, Options{FixedPlacement: fixed})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.DevicePos {
		if p != fixed[i] {
			t.Errorf("device %d at %d, want %d", i, p, fixed[i])
		}
	}
	// With I/O modeled the placement must also cover the two ports.
	withPorts := []NodeID{grid.Node(1, 1), grid.Node(2, 2), grid.Node(0, 0), grid.Node(3, 3)}
	if _, err := Synthesize(s, grid, Options{FixedPlacement: withPorts, ModelIO: true}); err != nil {
		t.Errorf("fixed placement with ports: %v", err)
	}
	if _, err := Synthesize(s, grid, Options{FixedPlacement: fixed, ModelIO: true}); err == nil {
		t.Error("placement without port nodes accepted while I/O is modeled")
	}
	if _, err := Synthesize(s, grid, Options{FixedPlacement: []NodeID{0}}); err == nil {
		t.Error("short fixed placement accepted")
	}
	if _, err := Synthesize(s, grid, Options{FixedPlacement: []NodeID{0, 99}}); err == nil {
		t.Error("out-of-grid fixed placement accepted")
	}
}

func TestEdgeReuseLowersEdgeCount(t *testing.T) {
	// Reuse-preferring costs must never use more edges than plain shortest
	// path on the same instance (ablation for the paper's objective (12)).
	s, b := scheduleFor(t, "RA30")
	grid, _ := NewGrid(b.GridRows, b.GridCols)
	reuse, err := Synthesize(s, grid, Options{ReuseCost: 10, NewCost: 30})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Synthesize(s, grid, Options{ReuseCost: 10, NewCost: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reuse.NumEdges > flat.NumEdges {
		t.Errorf("reuse-aware routing used %d edges, flat-cost %d", reuse.NumEdges, flat.NumEdges)
	}
}

func TestSwitchesExcludeDevices(t *testing.T) {
	res, _ := synthesizeBenchmark(t, "RA30")
	for _, sw := range res.Switches() {
		if res.IsDeviceNode(sw) {
			t.Errorf("switch list contains device node %d", sw)
		}
	}
}

// TestSynthesizeRandomProperty: random schedules on random grids synthesize
// into valid, conflict-free architectures.
func TestSynthesizeRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := assay.Random(8+int(seed%13+13)%13, 3, seed)
		s, err := sched.ListSchedule(g, sched.ListOptions{Devices: 3, Transport: 10, Mode: sched.TimeAndStorage})
		if err != nil {
			return false
		}
		grid, err := NewGrid(4, 4)
		if err != nil {
			return false
		}
		res, err := Synthesize(s, grid, Options{})
		if err != nil {
			return false
		}
		return res.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
