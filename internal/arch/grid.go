// Package arch implements architectural synthesis with distributed channel
// storage — Section 3.2 of "Transport or Store?" (DAC 2017).
//
// Devices and switches are placed on a connection grid; every transportation
// task from the schedule (internal/sched) is realized as a path of channel
// segments connected by switches, with time multiplexing: two paths may share
// a segment or a switch only if their live windows do not overlap. Stored
// tasks additionally claim one channel segment as distributed storage for the
// fluid's caching window (the segment's two end switches stay usable by other
// paths, exactly as the paper's constraint (10) excepts them).
//
// Two engines are provided: a deterministic placement + time-windowed router
// that minimizes the number of used channel segments (the practical engine
// for all benchmarks), and an exact ILP mode implementing the paper's
// constraints (8)–(12) for small instances (used in tests and ablations).
package arch

import "fmt"

// NodeID identifies a grid node (row-major: r*Cols + c).
type NodeID int

// EdgeID identifies a grid edge (channel segment). Horizontal edges come
// first in row-major order, then vertical edges.
type EdgeID int

// Grid is a rectangular connection grid: Rows×Cols nodes, edges between
// 4-neighbours. Every node can host a device or act as a switch; every edge
// is a channel segment able to transport or cache one fluid sample.
type Grid struct {
	Rows, Cols int
}

// NewGrid returns a grid with the given dimensions (both must be >= 2 so
// that at least one edge exists in each direction).
func NewGrid(rows, cols int) (Grid, error) {
	if rows < 2 || cols < 2 {
		return Grid{}, fmt.Errorf("arch: grid must be at least 2x2, got %dx%d", rows, cols)
	}
	return Grid{Rows: rows, Cols: cols}, nil
}

// NumNodes returns the node count.
func (g Grid) NumNodes() int { return g.Rows * g.Cols }

// NumEdges returns the channel-segment count.
func (g Grid) NumEdges() int { return g.Rows*(g.Cols-1) + (g.Rows-1)*g.Cols }

// numHorizontal is the count of horizontal edges.
func (g Grid) numHorizontal() int { return g.Rows * (g.Cols - 1) }

// Node returns the NodeID at (row, col).
func (g Grid) Node(row, col int) NodeID { return NodeID(row*g.Cols + col) }

// Coords returns the (row, col) of a node.
func (g Grid) Coords(n NodeID) (row, col int) { return int(n) / g.Cols, int(n) % g.Cols }

// InBounds reports whether (row, col) is a valid node position.
func (g Grid) InBounds(row, col int) bool {
	return row >= 0 && row < g.Rows && col >= 0 && col < g.Cols
}

// HorizontalEdge returns the edge between (row,col) and (row,col+1).
func (g Grid) HorizontalEdge(row, col int) EdgeID {
	return EdgeID(row*(g.Cols-1) + col)
}

// VerticalEdge returns the edge between (row,col) and (row+1,col).
func (g Grid) VerticalEdge(row, col int) EdgeID {
	return EdgeID(g.numHorizontal() + row*g.Cols + col)
}

// Endpoints returns the two nodes joined by e, smaller NodeID first.
func (g Grid) Endpoints(e EdgeID) (NodeID, NodeID) {
	if int(e) < g.numHorizontal() {
		row := int(e) / (g.Cols - 1)
		col := int(e) % (g.Cols - 1)
		return g.Node(row, col), g.Node(row, col+1)
	}
	v := int(e) - g.numHorizontal()
	row := v / g.Cols
	col := v % g.Cols
	return g.Node(row, col), g.Node(row+1, col)
}

// EdgeBetween returns the edge joining two adjacent nodes, or -1 if the
// nodes are not 4-neighbours.
func (g Grid) EdgeBetween(a, b NodeID) EdgeID {
	ra, ca := g.Coords(a)
	rb, cb := g.Coords(b)
	switch {
	case ra == rb && cb == ca+1:
		return g.HorizontalEdge(ra, ca)
	case ra == rb && ca == cb+1:
		return g.HorizontalEdge(ra, cb)
	case ca == cb && rb == ra+1:
		return g.VerticalEdge(ra, ca)
	case ca == cb && ra == rb+1:
		return g.VerticalEdge(rb, ca)
	default:
		return -1
	}
}

// Neighbors appends to buf the nodes adjacent to n and returns the slice.
func (g Grid) Neighbors(n NodeID, buf []NodeID) []NodeID {
	r, c := g.Coords(n)
	if g.InBounds(r-1, c) {
		buf = append(buf, g.Node(r-1, c))
	}
	if g.InBounds(r+1, c) {
		buf = append(buf, g.Node(r+1, c))
	}
	if g.InBounds(r, c-1) {
		buf = append(buf, g.Node(r, c-1))
	}
	if g.InBounds(r, c+1) {
		buf = append(buf, g.Node(r, c+1))
	}
	return buf
}

// IncidentEdges appends to buf the edges incident to n and returns the slice.
func (g Grid) IncidentEdges(n NodeID, buf []EdgeID) []EdgeID {
	r, c := g.Coords(n)
	if c > 0 {
		buf = append(buf, g.HorizontalEdge(r, c-1))
	}
	if c < g.Cols-1 {
		buf = append(buf, g.HorizontalEdge(r, c))
	}
	if r > 0 {
		buf = append(buf, g.VerticalEdge(r-1, c))
	}
	if r < g.Rows-1 {
		buf = append(buf, g.VerticalEdge(r, c))
	}
	return buf
}

// Manhattan returns the grid distance between two nodes.
func (g Grid) Manhattan(a, b NodeID) int {
	ra, ca := g.Coords(a)
	rb, cb := g.Coords(b)
	return abs(ra-rb) + abs(ca-cb)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the grid size as in the paper's Table 2 column G.
func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }
