package arch

import (
	"fmt"
	"sort"

	"flowsyn/internal/sched"
)

// PlacementStrategy selects how devices are assigned to grid nodes.
type PlacementStrategy int

const (
	// CommWeighted places heavily-communicating devices near each other
	// while keeping one free ring of switches around each device for
	// routing; this is the default.
	CommWeighted PlacementStrategy = iota
	// RowMajor naively fills alternate grid nodes left-to-right; kept as an
	// ablation baseline.
	RowMajor
)

// String names the strategy.
func (p PlacementStrategy) String() string {
	if p == RowMajor {
		return "row-major"
	}
	return "comm-weighted"
}

// commMatrix counts transportation tasks between each device pair.
func commMatrix(devices int, tasks []sched.Task) [][]int {
	w := make([][]int, devices)
	for i := range w {
		w[i] = make([]int, devices)
	}
	for _, t := range tasks {
		if t.From == t.To {
			continue
		}
		w[t.From][t.To]++
		w[t.To][t.From]++
	}
	return w
}

// candidateNodes returns device sites in preference order. Sites on the
// even checkerboard parity come first: any two such nodes are at Manhattan
// distance >= 2, so every device keeps a full ring of switches around it —
// the spread layout visible in the paper's Fig. 11 (five devices around an
// interior switch mesh). Within a parity class, central nodes come first.
func candidateNodes(g Grid) []NodeID {
	nodes := make([]NodeID, 0, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		nodes = append(nodes, NodeID(n))
	}
	centerR, centerC := (g.Rows-1)*10/2, (g.Cols-1)*10/2 // ×10 to stay integral
	parity := func(n NodeID) int {
		r, c := g.Coords(n)
		return (r + c) % 2
	}
	score := func(n NodeID) int {
		r, c := g.Coords(n)
		return abs(r*10-centerR) + abs(c*10-centerC)
	}
	sort.Slice(nodes, func(i, j int) bool {
		pi, pj := parity(nodes[i]), parity(nodes[j])
		if pi != pj {
			return pi < pj
		}
		si, sj := score(nodes[i]), score(nodes[j])
		if si != sj {
			return si < sj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// PlaceUnit chooses a grid node for the dedicated storage unit given the
// already-placed devices (and ports). Every store and fetch travels between a
// device and the unit, so the unit takes the free node minimizing its total
// Manhattan distance to the devices — with the same adjacency and corner
// penalties as device placement, since a unit glued onto a device port would
// monopolize one of the device's few access channels. Deterministic: ties
// break by the candidate order (central, switch-parity-first).
func PlaceUnit(g Grid, placed []NodeID) (NodeID, error) {
	taken := make(map[NodeID]bool, len(placed))
	for _, p := range placed {
		taken[p] = true
	}
	const adjacencyPenalty = 100000
	const cornerPenalty = 50000
	best, bestCost := NodeID(-1), 1<<30
	for _, site := range candidateNodes(g) {
		if taken[site] {
			continue
		}
		c := 0
		if len(g.Neighbors(site, nil)) < 3 {
			c += cornerPenalty
		}
		for _, p := range placed {
			d := g.Manhattan(site, p)
			c += d
			if d == 1 {
				c += adjacencyPenalty
			}
		}
		if c < bestCost {
			best, bestCost = site, c
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("arch: no free node left for the storage unit on %s grid", g)
	}
	return best, nil
}

// PlacePorts chooses grid nodes for the chip's input and output ports given
// the already-placed devices. Ports sit on the boundary (fluids enter and
// leave the chip there) on non-corner nodes (corners have only two incident
// channels), as far from each other as possible: the input port on the left
// half, the output port on the right.
func PlacePorts(g Grid, devices []NodeID) (in, out NodeID, err error) {
	taken := make(map[NodeID]bool, len(devices))
	for _, d := range devices {
		taken[d] = true
	}
	collect := func(avoidDeviceNeighbours bool) []NodeID {
		var out []NodeID
		for n := 0; n < g.NumNodes(); n++ {
			node := NodeID(n)
			r, c := g.Coords(node)
			onBoundary := r == 0 || r == g.Rows-1 || c == 0 || c == g.Cols-1
			corner := (r == 0 || r == g.Rows-1) && (c == 0 || c == g.Cols-1)
			if !onBoundary || corner || taken[node] {
				continue
			}
			if avoidDeviceNeighbours {
				// A port next to a device would monopolize one of the
				// device's few access channels.
				blocked := false
				for _, nb := range g.Neighbors(node, nil) {
					if taken[nb] {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			}
			out = append(out, node)
		}
		return out
	}
	boundary := collect(true)
	if len(boundary) < 2 {
		boundary = collect(false)
	}
	if len(boundary) < 2 {
		return -1, -1, fmt.Errorf("arch: no free boundary nodes left for I/O ports on %s grid", g)
	}
	// Score: input prefers small column (left), centered row; output prefers
	// large column (right).
	best := func(wantLeft bool, exclude NodeID) NodeID {
		bestNode, bestScore := NodeID(-1), 1<<30
		for _, n := range boundary {
			if n == exclude {
				continue
			}
			r, c := g.Coords(n)
			colScore := c
			if !wantLeft {
				colScore = g.Cols - 1 - c
			}
			rowScore := abs(2*r - (g.Rows - 1)) // centered rows first
			score := colScore*16 + rowScore
			if score < bestScore {
				bestNode, bestScore = n, score
			}
		}
		return bestNode
	}
	in = best(true, -1)
	out = best(false, in)
	return in, out, nil
}

// Place assigns each device to a distinct grid node.
//
// CommWeighted places devices in order of total communication weight; each
// device takes the candidate node minimizing the weighted Manhattan distance
// to already-placed partners, with a spacing penalty for adjacent devices
// (adjacent devices leave no switch between them for storage segments).
// A pairwise-swap improvement pass follows. The result is deterministic.
func Place(g Grid, devices int, tasks []sched.Task, strategy PlacementStrategy) ([]NodeID, error) {
	if devices < 1 {
		return nil, fmt.Errorf("arch: need at least one device, got %d", devices)
	}
	if devices > g.NumNodes()/2 {
		return nil, fmt.Errorf("arch: %d devices do not fit on a %s grid with routing room", devices, g)
	}

	if strategy == RowMajor {
		pos := make([]NodeID, devices)
		idx := 0
		for n := 0; n < g.NumNodes() && idx < devices; n += 2 {
			pos[idx] = NodeID(n)
			idx++
		}
		if idx < devices {
			return nil, fmt.Errorf("arch: row-major placement ran out of nodes for %d devices", devices)
		}
		return pos, nil
	}

	w := commMatrix(devices, tasks)
	totals := make([]int, devices)
	for i := range w {
		for j := range w[i] {
			totals[i] += w[i][j]
		}
	}
	order := make([]int, devices)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if totals[order[a]] != totals[order[b]] {
			return totals[order[a]] > totals[order[b]]
		}
		return order[a] < order[b]
	})

	candidates := candidateNodes(g)
	pos := make([]NodeID, devices)
	taken := make(map[NodeID]bool, devices)
	for i := range pos {
		pos[i] = -1
	}

	// Adjacent devices leave no switch between them, walling ports off from
	// the routing mesh, so adjacency carries a prohibitive penalty rather
	// than a mild one. Corner sites have only two incident channels — too
	// few for a device's concurrent in/out traffic — and are discouraged
	// almost as strongly.
	const adjacencyPenalty = 100000
	const cornerPenalty = 50000
	degreeOf := func(site NodeID) int { return len(g.Neighbors(site, nil)) }
	cost := func(dev int, site NodeID) int {
		c := 0
		if degreeOf(site) < 3 {
			c += cornerPenalty
		}
		for other, p := range pos {
			if p < 0 || other == dev {
				continue
			}
			d := g.Manhattan(site, p)
			c += w[dev][other] * d
			if d == 1 {
				c += adjacencyPenalty
			}
			if d == 0 {
				c += 1 << 20
			}
		}
		return c
	}

	for _, dev := range order {
		best, bestCost := NodeID(-1), 1<<30
		for _, site := range candidates {
			if taken[site] {
				continue
			}
			if c := cost(dev, site); c < bestCost {
				best, bestCost = site, c
			}
		}
		pos[dev] = best
		taken[best] = true
	}

	// Pairwise swap improvement.
	total := func() int {
		t := 0
		for i := 0; i < devices; i++ {
			for j := i + 1; j < devices; j++ {
				d := g.Manhattan(pos[i], pos[j])
				t += w[i][j] * d
				if d == 1 {
					t += adjacencyPenalty
				}
			}
		}
		return t
	}
	for improved := true; improved; {
		improved = false
		base := total()
		for i := 0; i < devices && !improved; i++ {
			for j := i + 1; j < devices && !improved; j++ {
				pos[i], pos[j] = pos[j], pos[i]
				if total() < base {
					improved = true
				} else {
					pos[i], pos[j] = pos[j], pos[i]
				}
			}
		}
	}
	return pos, nil
}
