package arch

import (
	"testing"
	"time"

	"flowsyn/internal/milp"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

func directTask(from, to, depart, arrive int) sched.Task {
	return sched.Task{
		Edge: seqgraph.Edge{Parent: 0, Child: 1},
		From: from, To: to,
		Kind:   sched.Direct,
		Depart: depart, Arrive: arrive,
	}
}

func TestILPSinglePathFixedPlacement(t *testing.T) {
	grid, _ := NewGrid(2, 3)
	// Devices at opposite ends of the top row; shortest path uses 2 edges.
	fixed := []NodeID{grid.Node(0, 0), grid.Node(0, 2)}
	res, err := SynthesizeILP(grid, 2, []sched.Task{directTask(0, 1, 0, 10)},
		ILPOptions{FixedPlacement: fixed, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if len(res.UsedEdges) != 2 {
		t.Errorf("used edges = %d, want 2 (objective %g)", len(res.UsedEdges), res.Objective)
	}
}

func TestILPTwoOverlappingPathsAreDisjoint(t *testing.T) {
	grid, _ := NewGrid(3, 3)
	// Two concurrent transports between the same device pair must use
	// disjoint edge sets (constraint (10)).
	fixed := []NodeID{grid.Node(0, 0), grid.Node(0, 2)}
	tasks := []sched.Task{
		directTask(0, 1, 0, 10),
		directTask(1, 0, 5, 15),
	}
	res, err := SynthesizeILP(grid, 2, tasks,
		ILPOptions{FixedPlacement: fixed, TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v", res.Status)
	}
	seen := map[EdgeID]bool{}
	for _, e := range res.PathEdges[0] {
		seen[e] = true
	}
	for _, e := range res.PathEdges[1] {
		if seen[e] {
			t.Errorf("edge %d shared by overlapping paths", e)
		}
	}
	// Minimum: 2 edges one way + 4 the other (disjoint detour) = 6.
	if len(res.UsedEdges) < 6 {
		t.Errorf("used edges = %d, want >= 6 for two disjoint paths", len(res.UsedEdges))
	}
}

func TestILPSequentialPathsShareEdges(t *testing.T) {
	grid, _ := NewGrid(3, 3)
	fixed := []NodeID{grid.Node(0, 0), grid.Node(0, 2)}
	tasks := []sched.Task{
		directTask(0, 1, 0, 10),
		directTask(1, 0, 20, 30), // disjoint in time: may reuse edges
	}
	res, err := SynthesizeILP(grid, 2, tasks,
		ILPOptions{FixedPlacement: fixed, TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.UsedEdges) != 2 {
		t.Errorf("used edges = %d, want 2 (time multiplexing reuses the channel)", len(res.UsedEdges))
	}
}

func TestILPFreePlacement(t *testing.T) {
	grid, _ := NewGrid(2, 2)
	res, err := SynthesizeILP(grid, 2, []sched.Task{directTask(0, 1, 0, 10)},
		ILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v", res.Status)
	}
	// Free placement should put the devices adjacent: one edge suffices.
	if len(res.UsedEdges) != 1 {
		t.Errorf("used edges = %d, want 1 with free placement", len(res.UsedEdges))
	}
	if res.DevicePos[0] == res.DevicePos[1] {
		t.Error("both devices on one node")
	}
}

func TestILPRejectsStoredTasks(t *testing.T) {
	grid, _ := NewGrid(2, 2)
	stored := sched.Task{Kind: sched.Stored, From: 0, To: 1}
	if _, err := SynthesizeILP(grid, 2, []sched.Task{stored}, ILPOptions{}); err == nil {
		t.Error("stored task accepted by exact mode")
	}
	same := directTask(0, 0, 0, 10)
	if _, err := SynthesizeILP(grid, 1, []sched.Task{same}, ILPOptions{}); err == nil {
		t.Error("same-device task accepted by exact mode")
	}
}

func TestILPMatchesHeuristicEdgeCount(t *testing.T) {
	// On a tiny instance the heuristic router should match the exact
	// optimum (one shortest path, no conflicts).
	grid, _ := NewGrid(2, 3)
	fixed := []NodeID{grid.Node(0, 0), grid.Node(0, 2)}
	task := directTask(0, 1, 0, 10)

	exact, err := SynthesizeILP(grid, 2, []sched.Task{task},
		ILPOptions{FixedPlacement: fixed, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	r := &router{
		grid: grid, occ: newOccupancy(),
		isDevice:  map[NodeID]bool{fixed[0]: true, fixed[1]: true},
		used:      map[EdgeID]bool{},
		reuseCost: 10, newCost: 30,
	}
	route, err := r.routeDirect(0, task, fixed[0], fixed[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(route.OutEdges) != len(exact.UsedEdges) {
		t.Errorf("heuristic path %d edges, exact optimum %d", len(route.OutEdges), len(exact.UsedEdges))
	}
}
