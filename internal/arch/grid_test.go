package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g, err := NewGrid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	// Horizontal: 3*3 = 9; vertical: 2*4 = 8.
	if g.NumEdges() != 17 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if _, err := NewGrid(1, 5); err == nil {
		t.Error("1-row grid accepted")
	}
	if g.String() != "3x4" {
		t.Errorf("String = %q", g.String())
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g, _ := NewGrid(4, 5)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			n := g.Node(r, c)
			rr, cc := g.Coords(n)
			if rr != r || cc != c {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", r, c, n, rr, cc)
			}
		}
	}
}

func TestEdgeEndpointsRoundTrip(t *testing.T) {
	g, _ := NewGrid(4, 4)
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		if got := g.EdgeBetween(u, v); got != EdgeID(e) {
			t.Fatalf("EdgeBetween(%d,%d) = %d, want %d", u, v, got, e)
		}
		if got := g.EdgeBetween(v, u); got != EdgeID(e) {
			t.Fatalf("EdgeBetween reversed = %d, want %d", got, e)
		}
		if g.Manhattan(u, v) != 1 {
			t.Fatalf("edge %d joins non-adjacent nodes %d,%d", e, u, v)
		}
	}
}

func TestEdgeBetweenNonAdjacent(t *testing.T) {
	g, _ := NewGrid(3, 3)
	if got := g.EdgeBetween(g.Node(0, 0), g.Node(2, 2)); got != -1 {
		t.Errorf("diagonal EdgeBetween = %d, want -1", got)
	}
	if got := g.EdgeBetween(g.Node(0, 0), g.Node(0, 2)); got != -1 {
		t.Errorf("distance-2 EdgeBetween = %d, want -1", got)
	}
}

func TestNeighborsAndIncidence(t *testing.T) {
	g, _ := NewGrid(3, 3)
	var nbuf [4]NodeID
	var ebuf [4]EdgeID
	// Corner has 2 neighbours, center has 4.
	if n := g.Neighbors(g.Node(0, 0), nbuf[:0]); len(n) != 2 {
		t.Errorf("corner neighbours = %d, want 2", len(n))
	}
	if n := g.Neighbors(g.Node(1, 1), nbuf[:0]); len(n) != 4 {
		t.Errorf("center neighbours = %d, want 4", len(n))
	}
	if e := g.IncidentEdges(g.Node(1, 1), ebuf[:0]); len(e) != 4 {
		t.Errorf("center incident edges = %d, want 4", len(e))
	}
	// Neighbour and incident-edge sets must be consistent.
	for n := 0; n < g.NumNodes(); n++ {
		nbs := g.Neighbors(NodeID(n), nil)
		edges := g.IncidentEdges(NodeID(n), nil)
		if len(nbs) != len(edges) {
			t.Fatalf("node %d: %d neighbours vs %d edges", n, len(nbs), len(edges))
		}
		for _, nb := range nbs {
			if g.EdgeBetween(NodeID(n), nb) == -1 {
				t.Fatalf("node %d: neighbour %d without edge", n, nb)
			}
		}
	}
}

// TestGridEdgeEnumerationProperty: edge ids are a bijection onto adjacent
// node pairs for random grid sizes.
func TestGridEdgeEnumerationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(6), 2+r.Intn(6)
		g, err := NewGrid(rows, cols)
		if err != nil {
			return false
		}
		seen := make(map[[2]NodeID]bool)
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.Endpoints(EdgeID(e))
			if u >= v {
				return false // canonical order violated
			}
			key := [2]NodeID{u, v}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return len(seen) == g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
