package arch

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flowsyn/internal/dedicated"
	"flowsyn/internal/sched"
)

// Options configures heuristic architectural synthesis.
type Options struct {
	// Strategy selects the device placement algorithm.
	Strategy PlacementStrategy
	// ReuseCost and NewCost price edge traversals during routing; a new
	// (never used) segment should cost more than reusing one so the total
	// number of built segments — the paper's objective (12) — stays small.
	// Zero values default to 10 and 30.
	ReuseCost, NewCost int
	// FixedPlacement, if non-nil, bypasses placement (used by ablations and
	// the ILP cross-check). With I/O modeled it must also cover the two
	// ports (schedule devices first, then input port, then output port).
	FixedPlacement []NodeID
	// ModelIO routes the chip-boundary transports (reagent loading and
	// product shipping) through two boundary I/O ports, so even an assay of
	// independent operations builds a routable channel network (the paper's
	// IVD row). Dense assays that already saturate their grid should leave
	// it off; the paper models no I/O transport.
	ModelIO bool
	// PinnedRoutes installs prior routes verbatim for the tasks they serve
	// (matched exactly by task) instead of re-routing them: the executed
	// prefix of a faulted run. Pinned routes are exempt from rip-up and from
	// the forbidden-edge masks below — they were legal when they ran, before
	// the fault existed. Requires FixedPlacement (the routes name concrete
	// grid nodes).
	PinnedRoutes []Route
	// ForbiddenEdges closes channel segments to all new routing and storage
	// (a failed valve pair).
	ForbiddenEdges []EdgeID
	// ForbiddenStorage closes channel segments to storage candidacy only (a
	// degraded segment still transports but cannot hold a cache).
	ForbiddenStorage []EdgeID
}

// Result is a synthesized chip architecture: the planar connection graph of
// devices, switches and channel segments, plus every routed transportation
// path.
type Result struct {
	// Grid is the connection grid used.
	Grid Grid
	// DevicePos maps device index -> grid node. When Ports is 2, the last
	// two entries are the chip's input and output ports.
	DevicePos []NodeID
	// Ports is the number of I/O port pseudo-devices at the tail of
	// DevicePos (0 or 2).
	Ports int
	// Routes realizes every transportation task of the schedule, in task
	// order.
	Routes []Route
	// UsedEdges lists the channel segments kept in the chip, ascending.
	UsedEdges []EdgeID
	// NumEdges is n_e of Table 2: len(UsedEdges).
	NumEdges int
	// NumValves is n_v of Table 2: one valve per used-segment endpoint that
	// terminates at a switch (device-internal valves are not counted,
	// matching the paper's accounting).
	NumValves int
	// StorageUnit is the grid node hosting the dedicated storage unit, or -1
	// when the schedule stores nothing in a unit (distributed strategy, or a
	// strategy schedule that never overflowed). The unit node is device-like:
	// routes terminate at it but never pass through it, and its segment
	// endpoints carry no counted network valve — the unit's own valve cost is
	// reported separately in UnitValves.
	StorageUnit NodeID
	// UnitCells is the peak number of fluids resident in the unit at once
	// (the cell count its multiplexer must address); zero without a unit.
	UnitCells int
	// UnitValves is the mux-tree valve cost of the unit itself (two log₂
	// trees plus the port pair), reported separately from NumValves.
	UnitValves int
	// EdgeRatio and ValveRatio compare against the full connection grid
	// (Fig. 8).
	EdgeRatio, ValveRatio float64
	// Runtime is the synthesis wall-clock time (t_r in Table 2).
	Runtime time.Duration
}

// UsedEdgeSet returns the used edges as a set.
func (r *Result) UsedEdgeSet() map[EdgeID]bool {
	set := make(map[EdgeID]bool, len(r.UsedEdges))
	for _, e := range r.UsedEdges {
		set[e] = true
	}
	return set
}

// IsDeviceNode reports whether n hosts a device (or the dedicated storage
// unit, which is device-like for routing and valve accounting).
func (r *Result) IsDeviceNode(n NodeID) bool {
	for _, p := range r.DevicePos {
		if p == n {
			return true
		}
	}
	return r.StorageUnit >= 0 && n == r.StorageUnit
}

// Switches returns the used grid nodes that act as switches (touched by at
// least one used edge and not hosting a device), ascending.
func (r *Result) Switches() []NodeID {
	seen := make(map[NodeID]bool)
	for _, e := range r.UsedEdges {
		u, v := r.Grid.Endpoints(e)
		seen[u] = true
		seen[v] = true
	}
	var out []NodeID
	for n := range seen {
		if !r.IsDeviceNode(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Synthesize places the schedule's devices on the grid and routes every
// transportation task with time multiplexing, then reports the pruned
// connection graph (only segments used at least once are kept, the paper's
// constraint (11) and objective (12)).
func Synthesize(s *sched.Schedule, grid Grid, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), s, grid, opts)
}

// SynthesizeContext is Synthesize bounded by a context: cancellation is
// observed before every routed task, so congested instances abort promptly
// with ctx.Err().
func SynthesizeContext(ctx context.Context, s *sched.Schedule, grid Grid, opts Options) (*Result, error) {
	start := time.Now()
	if opts.ReuseCost == 0 {
		opts.ReuseCost = 10
	}
	if opts.NewCost == 0 {
		opts.NewCost = 30
	}
	internalTasks := s.Tasks()
	nPlaced := s.Devices
	ports := 0
	if opts.ModelIO {
		ports = 2
		nPlaced += ports
	}
	tasks := expectedTasks(s, internalTasks, ports)

	// A schedule that routed fluids through the dedicated unit (dedicated or
	// hybrid storage strategy) needs a unit node on the chip; the need is
	// derived from the tasks themselves, so no extra option exists to get out
	// of sync with the schedule.
	needUnit := false
	for _, t := range tasks {
		if t.Unit {
			needUnit = true
			break
		}
	}

	pinnedByTask := make(map[sched.Task]Route, len(opts.PinnedRoutes))
	for _, pr := range opts.PinnedRoutes {
		pinnedByTask[pr.Task] = pr
	}
	// Pinned unit routes name the concrete unit node they already used; the
	// re-synthesis must keep the unit there so history stays valid.
	pinnedUnit := NodeID(-1)
	for _, pr := range opts.PinnedRoutes {
		if pr.Task.Unit && len(pr.OutNodes) > 0 {
			pinnedUnit = pr.OutNodes[len(pr.OutNodes)-1]
			break
		}
	}
	if len(pinnedByTask) > 0 {
		if opts.FixedPlacement == nil {
			return nil, fmt.Errorf("arch: pinned routes require a fixed placement")
		}
		found := 0
		for _, t := range tasks {
			if _, ok := pinnedByTask[t]; ok {
				found++
			}
		}
		if found != len(pinnedByTask) {
			return nil, fmt.Errorf("arch: %d pinned route(s) serve no task of the schedule",
				len(pinnedByTask)-found)
		}
	}
	forbidden := make(map[EdgeID]bool, len(opts.ForbiddenEdges))
	for _, e := range opts.ForbiddenEdges {
		forbidden[e] = true
	}
	noCache := make(map[EdgeID]bool, len(opts.ForbiddenStorage))
	for _, e := range opts.ForbiddenStorage {
		noCache[e] = true
	}

	// Candidate placements: the requested one, then fallbacks (a different
	// strategy often unblocks a congested instance).
	var placements [][]NodeID
	if opts.FixedPlacement != nil {
		if len(opts.FixedPlacement) != nPlaced {
			return nil, fmt.Errorf("arch: fixed placement has %d nodes for %d devices+ports",
				len(opts.FixedPlacement), nPlaced)
		}
		pos := append([]NodeID(nil), opts.FixedPlacement...)
		for _, p := range pos {
			if int(p) < 0 || int(p) >= grid.NumNodes() {
				return nil, fmt.Errorf("arch: fixed placement node %d outside %s grid", p, grid)
			}
		}
		placements = append(placements, pos)
	} else {
		// Devices are placed from the internal (device-to-device) traffic;
		// the two I/O ports then take boundary nodes.
		withPorts := func(devs []NodeID, err error) ([]NodeID, error) {
			if err != nil {
				return nil, err
			}
			if ports == 0 {
				return devs, nil
			}
			in, out, err := PlacePorts(grid, devs)
			if err != nil {
				return nil, err
			}
			return append(devs, in, out), nil
		}
		primary, err := withPorts(Place(grid, s.Devices, internalTasks, opts.Strategy))
		if err != nil {
			return nil, err
		}
		placements = append(placements, primary)
		// Fallback A: ignore communication weights (pure spread).
		if spread, err := withPorts(Place(grid, s.Devices, nil, opts.Strategy)); err == nil {
			placements = append(placements, spread)
		}
		// Fallback B: the other strategy.
		alt := RowMajor
		if opts.Strategy == RowMajor {
			alt = CommWeighted
		}
		if altPos, err := withPorts(Place(grid, s.Devices, internalTasks, alt)); err == nil {
			placements = append(placements, altPos)
		}
	}

	var (
		routes   []Route
		pos      []NodeID
		unitNode NodeID
		r        *router
		lastErr  error
		routedOK bool
	)
	for _, candidate := range placements {
		pos = candidate
		unitNode = -1
		if needUnit {
			if pinnedUnit >= 0 {
				unitNode = pinnedUnit
			} else {
				un, err := PlaceUnit(grid, pos)
				if err != nil {
					if lastErr == nil {
						lastErr = err
					}
					continue
				}
				unitNode = un
			}
		}
		r = &router{
			grid:      grid,
			occ:       newOccupancy(),
			isDevice:  make(map[NodeID]bool, len(pos)+1),
			unit:      unitNode,
			used:      make(map[EdgeID]bool),
			reuseCost: opts.ReuseCost,
			newCost:   opts.NewCost,
			forbidden: forbidden,
			noCache:   noCache,
			pinned:    make(map[int]bool, len(pinnedByTask)),
		}
		for _, p := range pos {
			r.isDevice[p] = true
		}
		if unitNode >= 0 {
			// Device-like: routes terminate at the unit, never pass through it,
			// and cached fluids cannot park on its access segments' node.
			r.isDevice[unitNode] = true
		}
		routes = make([]Route, 0, len(tasks))
		routedOK = true
		for i, t := range tasks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if pr, ok := pinnedByTask[t]; ok {
				// An executed route survives the fault verbatim: reserve its
				// resources so nothing re-planned collides with history, and
				// shield it from rip-up.
				r.applyReservations(i, pr)
				r.pinned[i] = true
				routes = append(routes, pr)
				continue
			}
			src, dst := pos[t.From], pos[t.To]
			route, err := r.routeTask(i, t, src, dst)
			if err != nil {
				// Evict blocking cached samples and retry before giving up.
				route, err = r.ripUpAndRetry(i, t, src, dst, routes)
			}
			if err != nil {
				if lastErr == nil {
					lastErr = fmt.Errorf("arch: routing task %v->%v (%v, placement %v): %w",
						s.Graph.Op(t.Edge.Parent).Name, s.Graph.Op(t.Edge.Child).Name, t.Kind, pos, err)
				}
				routedOK = false
				break
			}
			routes = append(routes, route)
		}
		if routedOK {
			break
		}
	}
	if !routedOK {
		return nil, lastErr
	}

	res := &Result{
		Grid:        grid,
		DevicePos:   pos,
		Ports:       ports,
		Routes:      routes,
		StorageUnit: unitNode,
		Runtime:     time.Since(start),
	}
	if unitNode >= 0 {
		res.UnitCells = s.UnitCells()
		res.UnitValves = dedicated.UnitValves(res.UnitCells)
	}
	// Used edges come from the final routes (rip-up may orphan edges the
	// router touched transiently).
	finalUsed := make(map[EdgeID]bool)
	for _, route := range routes {
		for _, e := range route.Edges() {
			finalUsed[e] = true
		}
	}
	for e := range finalUsed {
		res.UsedEdges = append(res.UsedEdges, e)
	}
	sort.Slice(res.UsedEdges, func(i, j int) bool { return res.UsedEdges[i] < res.UsedEdges[j] })
	res.NumEdges = len(res.UsedEdges)
	// Port endpoints carry valves (a port is a gated opening); only valves
	// inside true devices are excluded from n_v, as in the paper. The storage
	// unit is device-like too: its internal mux valves are priced separately
	// in UnitValves, not double-counted as network valves.
	trueDevices := make(map[NodeID]bool, s.Devices+1)
	for _, p := range pos[:s.Devices] {
		trueDevices[p] = true
	}
	if unitNode >= 0 {
		trueDevices[unitNode] = true
	}
	res.NumValves = countValves(grid, res.UsedEdges, trueDevices)

	totalEdges := grid.NumEdges()
	all := make([]EdgeID, totalEdges)
	for i := range all {
		all[i] = EdgeID(i)
	}
	totalValves := countValves(grid, all, trueDevices)
	res.EdgeRatio = float64(res.NumEdges) / float64(totalEdges)
	if totalValves > 0 {
		res.ValveRatio = float64(res.NumValves) / float64(totalValves)
	}
	return res, nil
}

// ExpectedTasks returns the complete transportation workload of the schedule
// in routing order: the internal device-to-device tasks plus, when ports is
// 2, the chip-boundary I/O tasks (input port at pseudo-device s.Devices,
// output port at s.Devices+1), merged by the time their first movement
// starts. It is the exact task list SynthesizeContext routes, exposed so an
// independent checker (internal/verify) can re-derive it.
func ExpectedTasks(s *sched.Schedule, ports int) []sched.Task {
	return expectedTasks(s, s.Tasks(), ports)
}

// expectedTasks merges the precomputed internal workload with the I/O tasks,
// letting SynthesizeContext reuse the task list it already derived.
func expectedTasks(s *sched.Schedule, internal []sched.Task, ports int) []sched.Task {
	if ports == 0 {
		return internal
	}
	tasks := append(append([]sched.Task(nil), internal...), s.IOTasks(s.Devices, s.Devices+1)...)
	sort.SliceStable(tasks, func(i, j int) bool {
		si, sj := taskStart(tasks[i]), taskStart(tasks[j])
		if si != sj {
			return si < sj
		}
		return tasks[i].Edge.Parent < tasks[j].Edge.Parent
	})
	return tasks
}

// countValves counts one valve per (edge, endpoint) incidence whose endpoint
// is a switch node; valves inside devices are excluded, matching the paper's
// note that mixer-internal valves are not counted in n_v.
func countValves(g Grid, edges []EdgeID, isDevice map[NodeID]bool) int {
	n := 0
	for _, e := range edges {
		u, v := g.Endpoints(e)
		if !isDevice[u] {
			n++
		}
		if !isDevice[v] {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants of a synthesis result: paths are
// connected node/edge alternations on the grid, every route's resources are
// used edges, storage segments exist for stored tasks, and no two
// simultaneously-live paths share a resource (re-checked from scratch,
// independently of the router's bookkeeping).
func (r *Result) Validate() error {
	used := r.UsedEdgeSet()
	checkPath := func(nodes []NodeID, edges []EdgeID) error {
		if len(nodes) != len(edges)+1 {
			return fmt.Errorf("arch: path has %d nodes for %d edges", len(nodes), len(edges))
		}
		for i, e := range edges {
			if r.Grid.EdgeBetween(nodes[i], nodes[i+1]) != e {
				return fmt.Errorf("arch: path edge %d does not join consecutive nodes", e)
			}
			if !used[e] {
				return fmt.Errorf("arch: path uses edge %d missing from UsedEdges", e)
			}
		}
		return nil
	}

	type claim struct {
		w    interval
		desc string
	}
	edgeClaims := make(map[EdgeID][]claim)
	nodeClaims := make(map[NodeID][]claim)

	for i, route := range r.Routes {
		t := route.Task
		if t.Kind == sched.Direct {
			if route.StorageEdge != -1 {
				return fmt.Errorf("arch: direct route %d carries a storage edge", i)
			}
			if len(route.OutNodes) == 0 {
				return fmt.Errorf("arch: direct route %d is empty", i)
			}
			if err := checkPath(route.OutNodes, route.OutEdges); err != nil {
				return err
			}
			w := interval{t.Depart, t.Arrive}
			for _, e := range route.OutEdges {
				edgeClaims[e] = append(edgeClaims[e], claim{w, fmt.Sprintf("direct %d", i)})
			}
			for _, n := range route.OutNodes {
				if !r.IsDeviceNode(n) {
					nodeClaims[n] = append(nodeClaims[n], claim{w, fmt.Sprintf("direct %d", i)})
				}
			}
			continue
		}
		if t.Unit {
			// A unit-stored fluid claims no channel segment while resident:
			// the store leg ends at the unit node and the fetch leg departs
			// from it, each occupying only its own transport window.
			if route.StorageEdge != -1 {
				return fmt.Errorf("arch: unit route %d carries a storage edge", i)
			}
			if r.StorageUnit < 0 {
				return fmt.Errorf("arch: unit route %d but no storage unit placed", i)
			}
			if err := checkPath(route.OutNodes, route.OutEdges); err != nil {
				return err
			}
			if err := checkPath(route.FetchNodes, route.FetchEdges); err != nil {
				return err
			}
			if route.OutNodes[len(route.OutNodes)-1] != r.StorageUnit {
				return fmt.Errorf("arch: unit route %d store leg does not reach the unit", i)
			}
			if route.FetchNodes[0] != r.StorageUnit {
				return fmt.Errorf("arch: unit route %d fetch leg does not start at the unit", i)
			}
			outW := interval{t.OutStart, t.OutEnd}
			fetchW := interval{t.FetchStart, t.FetchEnd}
			for _, e := range route.OutEdges {
				edgeClaims[e] = append(edgeClaims[e], claim{outW, fmt.Sprintf("out %d", i)})
			}
			for _, n := range route.OutNodes {
				if !r.IsDeviceNode(n) {
					nodeClaims[n] = append(nodeClaims[n], claim{outW, fmt.Sprintf("out %d", i)})
				}
			}
			for _, e := range route.FetchEdges {
				edgeClaims[e] = append(edgeClaims[e], claim{fetchW, fmt.Sprintf("fetch %d", i)})
			}
			for _, n := range route.FetchNodes {
				if !r.IsDeviceNode(n) {
					nodeClaims[n] = append(nodeClaims[n], claim{fetchW, fmt.Sprintf("fetch %d", i)})
				}
			}
			continue
		}
		if route.StorageEdge < 0 || !used[route.StorageEdge] {
			return fmt.Errorf("arch: stored route %d lacks a storage edge", i)
		}
		if err := checkPath(route.OutNodes, route.OutEdges); err != nil {
			return err
		}
		if err := checkPath(route.FetchNodes, route.FetchEdges); err != nil {
			return err
		}
		// Out path must end at an endpoint of the storage edge; fetch path
		// must start at one.
		u, v := r.Grid.Endpoints(route.StorageEdge)
		outEnd := route.OutNodes[len(route.OutNodes)-1]
		fetchStart := route.FetchNodes[0]
		if outEnd != u && outEnd != v {
			return fmt.Errorf("arch: stored route %d move-out does not reach its storage segment", i)
		}
		if fetchStart != u && fetchStart != v {
			return fmt.Errorf("arch: stored route %d fetch does not start at its storage segment", i)
		}
		outW := interval{t.OutStart, t.OutEnd}
		cacheW := interval{t.OutEnd, t.FetchStart}
		fetchW := interval{t.FetchStart, t.FetchEnd}
		for _, e := range route.OutEdges {
			edgeClaims[e] = append(edgeClaims[e], claim{outW, fmt.Sprintf("out %d", i)})
		}
		for _, n := range route.OutNodes {
			if !r.IsDeviceNode(n) {
				nodeClaims[n] = append(nodeClaims[n], claim{outW, fmt.Sprintf("out %d", i)})
			}
		}
		for _, w := range []interval{outW, cacheW, fetchW} {
			edgeClaims[route.StorageEdge] = append(edgeClaims[route.StorageEdge],
				claim{w, fmt.Sprintf("cache %d", i)})
		}
		for _, e := range route.FetchEdges {
			edgeClaims[e] = append(edgeClaims[e], claim{fetchW, fmt.Sprintf("fetch %d", i)})
		}
		for _, n := range route.FetchNodes {
			if !r.IsDeviceNode(n) {
				nodeClaims[n] = append(nodeClaims[n], claim{fetchW, fmt.Sprintf("fetch %d", i)})
			}
		}
	}

	conflict := func(claims []claim, kind string, id int) error {
		for a := 0; a < len(claims); a++ {
			for b := a + 1; b < len(claims); b++ {
				if claims[a].desc != claims[b].desc && overlaps(claims[a].w, claims[b].w) {
					return fmt.Errorf("arch: %s %d shared by %s and %s in overlapping windows",
						kind, id, claims[a].desc, claims[b].desc)
				}
			}
		}
		return nil
	}
	for e, claims := range edgeClaims {
		if err := conflict(claims, "edge", int(e)); err != nil {
			return err
		}
	}
	for n, claims := range nodeClaims {
		if err := conflict(claims, "node", int(n)); err != nil {
			return err
		}
	}
	return nil
}
