package arch

import (
	"testing"

	"flowsyn/internal/sched"
)

func TestOccupancyReserveAndRelease(t *testing.T) {
	o := newOccupancy()
	e := EdgeID(3)
	if !o.edgeFree(e, interval{0, 10}) {
		t.Fatal("fresh edge not free")
	}
	o.reserveEdge(7, e, interval{5, 15})
	if o.edgeFree(e, interval{0, 10}) {
		t.Error("overlapping window reported free")
	}
	if !o.edgeFree(e, interval{15, 20}) {
		t.Error("adjacent window reported busy (half-open intervals)")
	}
	if !o.edgeFree(e, interval{0, 5}) {
		t.Error("preceding window reported busy")
	}
	o.release(7)
	if !o.edgeFree(e, interval{5, 15}) {
		t.Error("release did not free the edge")
	}

	n := NodeID(4)
	o.reserveNode(1, n, interval{0, 5})
	o.reserveNode(2, n, interval{5, 10})
	o.release(1)
	if !o.nodeFree(n, interval{0, 5}) {
		t.Error("release removed wrong reservation")
	}
	if o.nodeFree(n, interval{5, 10}) {
		t.Error("release removed another route's reservation")
	}
}

func TestZeroWidthReservationsIgnored(t *testing.T) {
	o := newOccupancy()
	o.reserveEdge(0, EdgeID(1), interval{5, 5})
	if !o.edgeFree(EdgeID(1), interval{0, 100}) {
		t.Error("empty window reserved")
	}
}

func TestPlacePortsBoundaryNonCorner(t *testing.T) {
	grid, _ := NewGrid(4, 4)
	devices := []NodeID{grid.Node(1, 1), grid.Node(2, 2)}
	in, out, err := PlacePorts(grid, devices)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []NodeID{in, out} {
		r, c := grid.Coords(p)
		onBoundary := r == 0 || r == grid.Rows-1 || c == 0 || c == grid.Cols-1
		corner := (r == 0 || r == grid.Rows-1) && (c == 0 || c == grid.Cols-1)
		if !onBoundary || corner {
			t.Errorf("port at (%d,%d) is not a non-corner boundary node", r, c)
		}
		for _, d := range devices {
			if p == d {
				t.Error("port placed on a device")
			}
		}
	}
	if in == out {
		t.Error("both ports on one node")
	}
	// Input should sit left of output.
	_, ci := grid.Coords(in)
	_, co := grid.Coords(out)
	if ci >= co {
		t.Errorf("input port column %d not left of output column %d", ci, co)
	}
}

func TestPlacePortsAvoidsDeviceNeighbours(t *testing.T) {
	grid, _ := NewGrid(5, 5)
	devices := []NodeID{grid.Node(2, 2)}
	in, out, err := PlacePorts(grid, devices)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []NodeID{in, out} {
		if grid.Manhattan(p, devices[0]) == 1 {
			t.Errorf("port %d adjacent to device", p)
		}
	}
}

func TestRipUpEvictsBlockingCache(t *testing.T) {
	// Construct the textbook rip-up case on a 1x-wide corridor: a cache
	// occupies the only segment between two devices, then a direct task
	// needs exactly that corridor. Rip-up must relocate the cache.
	grid, _ := NewGrid(3, 3)
	a, b := grid.Node(1, 0), grid.Node(1, 2)
	r := &router{
		grid:      grid,
		occ:       newOccupancy(),
		isDevice:  map[NodeID]bool{a: true, b: true},
		used:      map[EdgeID]bool{},
		reuseCost: 10,
		newCost:   30,
	}
	storedTask := sched.Task{
		Kind: sched.Stored, From: 0, To: 1,
		OutStart: 0, OutEnd: 5, FetchStart: 100, FetchEnd: 105,
	}
	route0, err := r.routeStored(0, storedTask, a, b)
	if err != nil {
		t.Fatal(err)
	}
	routes := []Route{route0}

	directTask := sched.Task{
		Kind: sched.Direct, From: 0, To: 1,
		Depart: 40, Arrive: 50,
	}
	// Route the direct task; if the cache blocks it, rip-up must save us.
	route1, err := r.routeTask(1, directTask, a, b)
	if err != nil {
		route1, err = r.ripUpAndRetry(1, directTask, a, b, routes)
	}
	if err != nil {
		t.Fatalf("rip-up failed: %v", err)
	}
	if len(route1.OutEdges) == 0 {
		t.Error("empty direct route")
	}
	// The relocated (or original) cache must still be a valid stored route.
	if routes[0].StorageEdge < 0 {
		t.Error("victim lost its storage segment")
	}
}

func TestSpanAndTaskStart(t *testing.T) {
	d := sched.Task{Kind: sched.Direct, Depart: 3, Arrive: 9}
	if span(d) != (interval{3, 9}) || taskStart(d) != 3 {
		t.Error("direct span wrong")
	}
	s := sched.Task{Kind: sched.Stored, OutStart: 2, FetchEnd: 20}
	if span(s) != (interval{2, 20}) || taskStart(s) != 2 {
		t.Error("stored span wrong")
	}
}
