package arch

import (
	"fmt"
	"math"
	"time"

	"flowsyn/internal/milp"
	"flowsyn/internal/sched"
)

// ILPOptions configures the exact architectural-synthesis formulation
// implementing the paper's constraints (8)–(11) and objective (12).
//
// The exact mode is intended for small instances (it is how the paper's
// formulation is validated against the heuristic router); the paper itself
// needed up to 30 solver minutes per benchmark on this formulation.
type ILPOptions struct {
	// TimeLimit caps branch and bound; zero means 30 s.
	TimeLimit time.Duration
	// FixedPlacement, if non-nil, pins each device to a node, dropping the
	// placement variables a_{i,k} (constraint (8)) from the model.
	FixedPlacement []NodeID
}

// ILPResult carries the exact synthesis output.
type ILPResult struct {
	// DevicePos maps device -> node (either chosen by the ILP or fixed).
	DevicePos []NodeID
	// PathEdges lists, per task, the chosen edge set (ε_{j,r} = 1).
	PathEdges [][]EdgeID
	// UsedEdges is the pruned segment set (s_j = 1), ascending.
	UsedEdges []EdgeID
	// Status and Objective report the solver outcome; Objective is the
	// number of used edges, the paper's objective (12).
	Status    milp.Status
	Objective float64
	// Stats carries the MILP solver diagnostics (nodes, pivots, warm-start
	// rate, presolve reductions, MIP gap).
	Stats milp.SolveStats
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
}

// Feasible reports whether the ILP produced a usable assignment.
func (r *ILPResult) Feasible() bool {
	switch r.Status {
	case milp.StatusOptimal, milp.StatusFeasible, milp.StatusTimeLimit, milp.StatusIterLimit:
		return r.DevicePos != nil
	default:
		return false
	}
}

// SynthesizeILP solves the paper's architectural-synthesis ILP for the
// direct transportation tasks of a schedule on the given grid. Stored tasks
// are not supported in the exact mode (the heuristic engine handles them);
// callers pass the direct tasks they want realized.
//
// Model, following Section 3.2:
//
//   - a_{i,k}: device k at node i, with ≤1 device per node and each device
//     placed exactly once (constraint (8); skipped under FixedPlacement);
//   - ε_{j,r}: edge j on path r, with degree constraints at every node: the
//     degree of a path at a node is 1 at its two endpoint devices, and 0 or
//     2 elsewhere (constraint (9) in its big-M form when placement is free);
//   - overlapping-in-time paths must not share an edge or intersect at a
//     switch node (constraint (10));
//   - s_j ≥ ε_{j,r} and the objective minimizes Σ s_j ((11)–(12)).
//
// Spurious disjoint cycles admitted by the degree constraints are removed by
// the objective, which strictly pays for every extra edge.
func SynthesizeILP(grid Grid, devices int, tasks []sched.Task, opts ILPOptions) (*ILPResult, error) {
	for _, t := range tasks {
		if t.Kind != sched.Direct {
			return nil, fmt.Errorf("arch: exact ILP mode supports direct tasks only (got %v)", t.Kind)
		}
		if t.From == t.To {
			return nil, fmt.Errorf("arch: exact ILP mode requires distinct endpoint devices")
		}
	}
	limit := opts.TimeLimit
	if limit == 0 {
		limit = 30 * time.Second
	}

	nNodes := grid.NumNodes()
	nEdges := grid.NumEdges()
	m := milp.NewModel()

	// Placement variables (or fixed positions).
	fixed := opts.FixedPlacement != nil
	var a [][]milp.Var // a[node][dev]
	if fixed {
		if len(opts.FixedPlacement) != devices {
			return nil, fmt.Errorf("arch: fixed placement has %d nodes for %d devices",
				len(opts.FixedPlacement), devices)
		}
		seen := map[NodeID]bool{}
		for _, p := range opts.FixedPlacement {
			if int(p) < 0 || int(p) >= nNodes {
				return nil, fmt.Errorf("arch: placement node %d outside grid", p)
			}
			if seen[p] {
				return nil, fmt.Errorf("arch: two devices on node %d", p)
			}
			seen[p] = true
		}
	} else {
		a = make([][]milp.Var, nNodes)
		for i := 0; i < nNodes; i++ {
			a[i] = make([]milp.Var, devices)
			for k := 0; k < devices; k++ {
				a[i][k] = m.NewBinary(fmt.Sprintf("a_%d_%d", i, k))
			}
		}
		// Constraint (8).
		for i := 0; i < nNodes; i++ {
			e := milp.NewExpr(0)
			for k := 0; k < devices; k++ {
				e.Add(a[i][k], 1)
			}
			m.AddLE(fmt.Sprintf("node_%d", i), *e, 1)
		}
		for k := 0; k < devices; k++ {
			e := milp.NewExpr(0)
			for i := 0; i < nNodes; i++ {
				e.Add(a[i][k], 1)
			}
			m.AddEQ(fmt.Sprintf("dev_%d", k), *e, 1)
		}
	}

	hostsDevice := func(i NodeID, k int) float64 {
		if opts.FixedPlacement[k] == i {
			return 1
		}
		return 0
	}

	// Path edge variables.
	eps := make([][]milp.Var, len(tasks)) // eps[r][edge]
	for r := range tasks {
		eps[r] = make([]milp.Var, nEdges)
		for j := 0; j < nEdges; j++ {
			eps[r][j] = m.NewBinary(fmt.Sprintf("eps_%d_%d", r, j))
		}
	}

	const bigM = 8

	// Degree constraints (9).
	var ibuf [4]EdgeID
	for r, t := range tasks {
		for i := 0; i < nNodes; i++ {
			node := NodeID(i)
			deg := milp.NewExpr(0)
			for _, e := range grid.IncidentEdges(node, ibuf[:0]) {
				deg.Add(eps[r][e], 1)
			}
			if fixed {
				k1 := hostsDevice(node, t.From)
				k2 := hostsDevice(node, t.To)
				if k1+k2 > 0 {
					// Endpoint: exactly one incident edge.
					m.AddEQ(fmt.Sprintf("deg_end_%d_%d", r, i), *deg, 1)
					continue
				}
				// Nodes hosting unrelated devices cannot be traversed.
				other := false
				for k := 0; k < devices; k++ {
					if k != t.From && k != t.To && opts.FixedPlacement[k] == node {
						other = true
						break
					}
				}
				if other {
					m.AddEQ(fmt.Sprintf("deg_dev_%d_%d", r, i), *deg, 0)
					continue
				}
				// Interior node: degree 0 or 2 via indicator y.
				y := m.NewBinary(fmt.Sprintf("y_%d_%d", r, i))
				degY := deg.Clone()
				degY.Add(y, -2)
				m.AddEQ(fmt.Sprintf("deg_int_%d_%d", r, i), degY, 0)
				continue
			}
			// Free placement: the paper's big-M form. y indicates the path
			// touches the node.
			y := m.NewBinary(fmt.Sprintf("y_%d_%d", r, i))
			// deg <= M*y
			degUB := deg.Clone()
			degUB.Add(y, -bigM)
			m.AddLE(fmt.Sprintf("deg_ub_%d_%d", r, i), degUB, 0)
			// deg >= 2 - a_{i,k1} - a_{i,k2} - (1-y)M
			lhs := deg.Clone()
			lhs.Add(a[i][t.From], 1)
			lhs.Add(a[i][t.To], 1)
			lhs.Add(y, -bigM)
			m.AddGE(fmt.Sprintf("deg_lb_%d_%d", r, i), lhs, 2-bigM)
			// Endpoint degree is exactly one: deg <= 2 - a_{i,k1} - a_{i,k2}.
			ub := deg.Clone()
			ub.Add(a[i][t.From], 1)
			ub.Add(a[i][t.To], 1)
			m.AddLE(fmt.Sprintf("deg_end_ub_%d_%d", r, i), ub, 2)
			// The path must touch its endpoints: y >= a_{i,k1}, y >= a_{i,k2}.
			m.AddGE(fmt.Sprintf("touch1_%d_%d", r, i),
				*milp.NewExpr(0).Add(y, 1).Add(a[i][t.From], -1), 0)
			m.AddGE(fmt.Sprintf("touch2_%d_%d", r, i),
				*milp.NewExpr(0).Add(y, 1).Add(a[i][t.To], -1), 0)
			// Nodes hosting unrelated devices cannot be traversed:
			// deg <= M(1 - a_{i,d}) for every other device d.
			for d := 0; d < devices; d++ {
				if d == t.From || d == t.To {
					continue
				}
				blocked := deg.Clone()
				blocked.Add(a[i][d], bigM)
				m.AddLE(fmt.Sprintf("block_%d_%d_%d", r, i, d), blocked, bigM)
			}
		}
	}

	// Time-multiplexing disjointness (10): overlapping-in-time paths share
	// no edge. (Node intersection is forbidden through shared edges at
	// switch degree >2; with edge disjointness plus degree constraints two
	// paths crossing one switch concurrently is already excluded for fixed
	// placement; the heuristic validator enforces the full rule.)
	for r1 := 0; r1 < len(tasks); r1++ {
		for r2 := r1 + 1; r2 < len(tasks); r2++ {
			w1 := interval{tasks[r1].Depart, tasks[r1].Arrive}
			w2 := interval{tasks[r2].Depart, tasks[r2].Arrive}
			if !overlaps(w1, w2) {
				continue
			}
			for j := 0; j < nEdges; j++ {
				m.AddLE(fmt.Sprintf("disj_%d_%d_%d", r1, r2, j),
					*milp.NewExpr(0).Add(eps[r1][j], 1).Add(eps[r2][j], 1), 1)
			}
		}
	}

	// Edge keep variables and objective (11)–(12).
	s := make([]milp.Var, nEdges)
	obj := milp.NewExpr(0)
	for j := 0; j < nEdges; j++ {
		s[j] = m.NewBinary(fmt.Sprintf("s_%d", j))
		obj.Add(s[j], 1)
		for r := range tasks {
			m.AddGE(fmt.Sprintf("keep_%d_%d", j, r),
				*milp.NewExpr(0).Add(s[j], 1).Add(eps[r][j], -1), 0)
		}
	}
	m.SetObjective(*obj, milp.Minimize)

	startT := time.Now()
	sol, err := milp.Solve(m, milp.SolveOptions{TimeLimit: limit})
	if err != nil {
		return nil, fmt.Errorf("arch: solving synthesis ILP: %w", err)
	}
	res := &ILPResult{Status: sol.Status, Objective: sol.Objective,
		Stats: sol.Stats, Runtime: time.Since(startT)}
	if !sol.Feasible() {
		return res, nil
	}
	if fixed {
		res.DevicePos = append([]NodeID(nil), opts.FixedPlacement...)
	} else {
		res.DevicePos = make([]NodeID, devices)
		for k := 0; k < devices; k++ {
			for i := 0; i < nNodes; i++ {
				if math.Round(sol.Value(a[i][k])) == 1 {
					res.DevicePos[k] = NodeID(i)
					break
				}
			}
		}
	}
	res.PathEdges = make([][]EdgeID, len(tasks))
	for r := range tasks {
		for j := 0; j < nEdges; j++ {
			if math.Round(sol.Value(eps[r][j])) == 1 {
				res.PathEdges[r] = append(res.PathEdges[r], EdgeID(j))
			}
		}
	}
	for j := 0; j < nEdges; j++ {
		if math.Round(sol.Value(s[j])) == 1 {
			res.UsedEdges = append(res.UsedEdges, EdgeID(j))
		}
	}
	return res, nil
}
