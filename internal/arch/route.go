package arch

import (
	"container/heap"
	"fmt"
	"sort"

	"flowsyn/internal/sched"
)

// Route is the physical realization of one transportation task.
type Route struct {
	// Task is the scheduled transportation requirement this route serves.
	Task sched.Task
	// OutNodes/OutEdges form the (only) path for Direct tasks, or the
	// sub-path p_{r,1} from the source device into the storage segment for
	// Stored tasks. Nodes and edges alternate: len(nodes) = len(edges)+1.
	OutNodes []NodeID
	OutEdges []EdgeID
	// StorageEdge is the caching channel segment (p_{r,2}); -1 for Direct.
	StorageEdge EdgeID
	// FetchNodes/FetchEdges form the sub-path p_{r,3} from the storage
	// segment to the destination device (empty for Direct tasks).
	FetchNodes []NodeID
	FetchEdges []EdgeID
}

// Edges returns every channel segment the route touches.
func (r Route) Edges() []EdgeID {
	out := append([]EdgeID(nil), r.OutEdges...)
	if r.StorageEdge >= 0 {
		out = append(out, r.StorageEdge)
	}
	out = append(out, r.FetchEdges...)
	return out
}

// interval is a half-open time window [Start, End).
type interval struct {
	Start, End int
}

func overlaps(a, b interval) bool { return a.Start < b.End && b.Start < a.End }

// tagged is a reservation attributed to a route, so rip-up can release it.
type tagged struct {
	w     interval
	route int
}

// occupancy tracks time-windowed reservations of grid resources: the
// time-multiplexing model of the paper's constraint (10). Edges are reserved
// by transports and by cached fluids; switch nodes are reserved by
// transports only (a cached segment's end switches stay usable by other
// paths, the paper's exception to (10)). Device nodes are never reserved:
// a device exposes several interface valves (the paper's Fig. 1(b) mixer
// has six), so two fluids may use different ports of one device
// concurrently — they are still forced onto distinct channel segments by
// edge exclusivity.
type occupancy struct {
	edges map[EdgeID][]tagged
	nodes map[NodeID][]tagged
}

func newOccupancy() *occupancy {
	return &occupancy{
		edges: make(map[EdgeID][]tagged),
		nodes: make(map[NodeID][]tagged),
	}
}

func (o *occupancy) edgeFree(e EdgeID, w interval) bool {
	for _, r := range o.edges[e] {
		if overlaps(r.w, w) {
			return false
		}
	}
	return true
}

func (o *occupancy) nodeFree(n NodeID, w interval) bool {
	for _, r := range o.nodes[n] {
		if overlaps(r.w, w) {
			return false
		}
	}
	return true
}

func (o *occupancy) reserveEdge(id int, e EdgeID, w interval) {
	if w.Start < w.End {
		o.edges[e] = append(o.edges[e], tagged{w, id})
	}
}

func (o *occupancy) reserveNode(id int, n NodeID, w interval) {
	if w.Start < w.End {
		o.nodes[n] = append(o.nodes[n], tagged{w, id})
	}
}

// release removes every reservation held by the given route.
func (o *occupancy) release(id int) {
	for e, list := range o.edges {
		o.edges[e] = dropRoute(list, id)
	}
	for n, list := range o.nodes {
		o.nodes[n] = dropRoute(list, id)
	}
}

func dropRoute(list []tagged, id int) []tagged {
	out := list[:0]
	for _, t := range list {
		if t.route != id {
			out = append(out, t)
		}
	}
	return out
}

// router performs time-windowed shortest-path queries over the grid.
type router struct {
	grid     Grid
	occ      *occupancy
	isDevice map[NodeID]bool
	// unit is the dedicated storage unit's node (-1 without one). It is
	// device-like: registered in isDevice, so paths terminate at it but never
	// pass through, and unit tasks route their store and fetch legs to/from it.
	unit NodeID
	used map[EdgeID]bool // edges already used at least once
	// reuseCost/newCost price an edge traversal; newCost > reuseCost makes
	// the router prefer already-used segments, minimizing the paper's
	// objective (12) greedily.
	reuseCost, newCost int
	// bannedStorage excludes specific segments from storage selection; used
	// while re-homing a ripped-up cache. (Transient — overwritten per rehome,
	// which is why the fault masks below are separate fields.)
	bannedStorage map[EdgeID]bool
	// forbidden excludes failed segments from all new routing and storage;
	// noCache excludes degraded segments from storage candidacy only. Both
	// come from injected faults and hold for the whole synthesis.
	forbidden map[EdgeID]bool
	noCache   map[EdgeID]bool
	// pinned marks route ids installed verbatim from a pre-fault execution:
	// rip-up may never evict them.
	pinned map[int]bool
}

// free reports whether switch node n is usable in window w; device nodes are
// always usable (multi-port devices, see the occupancy doc comment).
func (r *router) free(n NodeID, w interval) bool {
	if r.isDevice[n] {
		return true
	}
	return r.occ.nodeFree(n, w)
}

// reservePath reserves every edge and every switch node of a path for
// window w (device nodes stay shareable).
func (r *router) reservePath(id int, nodes []NodeID, edges []EdgeID, w interval) {
	for _, e := range edges {
		r.occ.reserveEdge(id, e, w)
	}
	for _, n := range nodes {
		if !r.isDevice[n] {
			r.occ.reserveNode(id, n, w)
		}
	}
}

// applyReservations installs all of route's reservations under the given id
// and marks its edges used. It mirrors exactly what the route* methods do on
// success, so a ripped-up route can be restored verbatim.
func (r *router) applyReservations(id int, route Route) {
	t := route.Task
	if t.Kind == sched.Direct {
		r.reservePath(id, route.OutNodes, route.OutEdges, interval{t.Depart, t.Arrive})
	} else if t.Unit {
		// The fluid waits in the unit, not on the grid: only the two transport
		// legs occupy channel resources.
		r.reservePath(id, route.OutNodes, route.OutEdges, interval{t.OutStart, t.OutEnd})
		r.reservePath(id, route.FetchNodes, route.FetchEdges, interval{t.FetchStart, t.FetchEnd})
	} else {
		outW := interval{t.OutStart, t.OutEnd}
		cacheW := interval{t.OutEnd, t.FetchStart}
		fetchW := interval{t.FetchStart, t.FetchEnd}
		r.reservePath(id, route.OutNodes, route.OutEdges, outW)
		r.occ.reserveEdge(id, route.StorageEdge, outW)
		r.occ.reserveEdge(id, route.StorageEdge, cacheW)
		r.occ.reserveEdge(id, route.StorageEdge, fetchW)
		r.reservePath(id, route.FetchNodes, route.FetchEdges, fetchW)
	}
	for _, e := range route.Edges() {
		r.used[e] = true
	}
}

// rebuildUsed recomputes the used-edge set from the committed routes.
func (r *router) rebuildUsed(routes []Route) {
	r.used = make(map[EdgeID]bool)
	for _, route := range routes {
		for _, e := range route.Edges() {
			r.used[e] = true
		}
	}
}

type pqItem struct {
	node NodeID
	dist int
}

type pq []pqItem

func (p pq) Len() int      { return len(p) }
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].node < p[j].node
}
func (p *pq) Push(x any) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

func (r *router) edgeCost(e EdgeID) int {
	if r.used[e] {
		return r.reuseCost
	}
	return r.newCost
}

const unreachable = 1 << 30

// shortestTree runs Dijkstra from src during window w, avoiding reserved
// resources and device nodes (except src itself and an optional allowed
// target device node). banEdge, if >= 0, is additionally avoided (used to
// keep a storage segment out of its own feeder paths). It returns dist and
// predecessor arrays.
func (r *router) shortestTree(src NodeID, w interval, allowDevice NodeID, banEdge EdgeID) (dist []int, predEdge []EdgeID, predNode []NodeID) {
	n := r.grid.NumNodes()
	dist = make([]int, n)
	predEdge = make([]EdgeID, n)
	predNode = make([]NodeID, n)
	for i := range dist {
		dist[i] = unreachable
		predEdge[i] = -1
		predNode[i] = -1
	}
	if !r.free(src, w) {
		return dist, predEdge, predNode
	}
	dist[src] = 0
	h := &pq{{node: src, dist: 0}}
	var nbuf [4]NodeID
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, nb := range r.grid.Neighbors(it.node, nbuf[:0]) {
			if r.isDevice[nb] && nb != src && nb != allowDevice {
				continue
			}
			e := r.grid.EdgeBetween(it.node, nb)
			if e == banEdge || r.forbidden[e] || !r.occ.edgeFree(e, w) || !r.free(nb, w) {
				continue
			}
			nd := it.dist + r.edgeCost(e)
			if nd < dist[nb] {
				dist[nb] = nd
				predEdge[nb] = e
				predNode[nb] = it.node
				heap.Push(h, pqItem{node: nb, dist: nd})
			}
		}
	}
	return dist, predEdge, predNode
}

func containsEdge(list []EdgeID, e EdgeID) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

func reverseNodes(in []NodeID) []NodeID {
	out := make([]NodeID, len(in))
	for i, n := range in {
		out[len(in)-1-i] = n
	}
	return out
}

func reverseEdges(in []EdgeID) []EdgeID {
	out := make([]EdgeID, len(in))
	for i, e := range in {
		out[len(in)-1-i] = e
	}
	return out
}

// walkBack reconstructs the path src..dst from predecessor arrays.
func walkBack(dst NodeID, predEdge []EdgeID, predNode []NodeID) (nodes []NodeID, edges []EdgeID) {
	for n := dst; n != -1; n = predNode[n] {
		nodes = append(nodes, n)
		if predEdge[n] != -1 {
			edges = append(edges, predEdge[n])
		}
	}
	// Reverse to src..dst order.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return nodes, edges
}

// routeDirect finds and reserves a path for a Direct task under route id.
func (r *router) routeDirect(id int, t sched.Task, src, dst NodeID) (Route, error) {
	w := interval{t.Depart, t.Arrive}
	dist, pe, pn := r.shortestTree(src, w, dst, -1)
	if dist[dst] >= unreachable {
		return Route{}, fmt.Errorf("arch: no conflict-free path %v->%v during [%d,%d)", src, dst, w.Start, w.End)
	}
	nodes, edges := walkBack(dst, pe, pn)
	route := Route{Task: t, OutNodes: nodes, OutEdges: edges, StorageEdge: -1}
	r.applyReservations(id, route)
	return route, nil
}

// routeStored finds and reserves the three sub-paths of a Stored task under
// route id: the move-out path into a storage segment, the caching segment
// itself, and the fetch path to the destination device.
func (r *router) routeStored(id int, t sched.Task, src, dst NodeID) (Route, error) {
	outW := interval{t.OutStart, t.OutEnd}
	cacheW := interval{t.OutEnd, t.FetchStart}
	fetchW := interval{t.FetchStart, t.FetchEnd}
	spanW := interval{t.OutStart, t.FetchEnd}

	// Unconstrained trees estimate candidate costs; feasibility of each
	// candidate is then checked with the candidate edge banned from its own
	// feeder paths (the cheapest path to an endpoint often runs through the
	// candidate segment itself).
	distOut, _, _ := r.shortestTree(src, outW, -1, -1)
	distFetch, _, _ := r.shortestTree(dst, fetchW, -1, -1)

	// Device-incident segments may cache only for their own source or
	// target device, and even then reluctantly: a cached sample parked on a
	// device port would wall the device in for the whole storage lifetime
	// (the paper's Fig. 11 caches in the interior switch mesh).
	const devicePortPenalty = 1000
	type candidate struct {
		cost int
		edge EdgeID
		u, v NodeID
	}
	var cands []candidate
	for e := 0; e < r.grid.NumEdges(); e++ {
		eid := EdgeID(e)
		if r.bannedStorage[eid] || r.forbidden[eid] || r.noCache[eid] {
			continue
		}
		if !r.occ.edgeFree(eid, spanW) {
			continue
		}
		u, v := r.grid.Endpoints(eid)
		penalty := 0
		if r.isDevice[u] || r.isDevice[v] {
			if !(u == src || v == src || u == dst || v == dst) {
				continue
			}
			penalty = devicePortPenalty
		}
		for flip := 0; flip < 2; flip++ {
			a, b := u, v
			if flip == 1 {
				a, b = v, u
			}
			if distOut[a] >= unreachable || distFetch[b] >= unreachable {
				continue
			}
			cands = append(cands, candidate{
				cost: distOut[a] + r.edgeCost(eid) + distFetch[b] + penalty,
				edge: eid, u: a, v: b,
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		if cands[i].edge != cands[j].edge {
			return cands[i].edge < cands[j].edge
		}
		return cands[i].u < cands[j].u
	})

	for _, c := range cands {
		dOut, peOut, pnOut := r.shortestTree(src, outW, -1, c.edge)
		if dOut[c.u] >= unreachable {
			continue
		}
		dFetch, peFetch, pnFetch := r.shortestTree(dst, fetchW, -1, c.edge)
		if dFetch[c.v] >= unreachable {
			continue
		}
		on, oe := walkBack(c.u, peOut, pnOut)
		fnRev, feRev := walkBack(c.v, peFetch, pnFetch)
		route := Route{
			Task:        t,
			OutNodes:    on,
			OutEdges:    oe,
			StorageEdge: c.edge,
			FetchNodes:  reverseNodes(fnRev),
			FetchEdges:  reverseEdges(feRev),
		}
		r.applyReservations(id, route)
		return route, nil
	}
	return Route{}, fmt.Errorf("arch: no storage segment available for task %v (cache [%d,%d))",
		t.Edge, cacheW.Start, cacheW.End)
}

// routeUnit finds and reserves the two transport legs of a unit-stored task:
// the store leg from the source device into the storage unit during
// [OutStart, OutEnd), and the fetch leg from the unit to the destination
// device during [FetchStart, FetchEnd). Between the two the fluid sits in a
// unit cell, claiming no grid resource.
func (r *router) routeUnit(id int, t sched.Task, src, dst NodeID) (Route, error) {
	if r.unit < 0 {
		return Route{}, fmt.Errorf("arch: unit task %v but no storage unit placed", t.Edge)
	}
	outW := interval{t.OutStart, t.OutEnd}
	fetchW := interval{t.FetchStart, t.FetchEnd}
	dOut, peOut, pnOut := r.shortestTree(src, outW, r.unit, -1)
	if dOut[r.unit] >= unreachable {
		return Route{}, fmt.Errorf("arch: no conflict-free store leg %v->unit %v during [%d,%d)",
			src, r.unit, outW.Start, outW.End)
	}
	on, oe := walkBack(r.unit, peOut, pnOut)
	dFetch, peFetch, pnFetch := r.shortestTree(r.unit, fetchW, dst, -1)
	if dFetch[dst] >= unreachable {
		return Route{}, fmt.Errorf("arch: no conflict-free fetch leg unit %v->%v during [%d,%d)",
			r.unit, dst, fetchW.Start, fetchW.End)
	}
	fn, fe := walkBack(dst, peFetch, pnFetch)
	route := Route{
		Task:        t,
		OutNodes:    on,
		OutEdges:    oe,
		StorageEdge: -1,
		FetchNodes:  fn,
		FetchEdges:  fe,
	}
	r.applyReservations(id, route)
	return route, nil
}

// routeTask dispatches on the task kind.
func (r *router) routeTask(id int, t sched.Task, src, dst NodeID) (Route, error) {
	if t.Kind == sched.Direct {
		return r.routeDirect(id, t, src, dst)
	}
	if t.Unit {
		return r.routeUnit(id, t, src, dst)
	}
	return r.routeStored(id, t, src, dst)
}

// span returns the full live window of a task.
func span(t sched.Task) interval {
	if t.Kind == sched.Direct {
		return interval{t.Depart, t.Arrive}
	}
	return interval{t.OutStart, t.FetchEnd}
}

// taskStart returns the first moment a task occupies the grid.
func taskStart(t sched.Task) int { return span(t).Start }

// maxEvictions bounds how many committed caches one routing retry may evict.
const maxEvictions = 4

// ripUpAndRetry handles a routing failure for task t (route id) by evicting
// previously-committed cached samples whose lifetimes overlap t's window —
// one at a time, up to maxEvictions — retrying t after each eviction, and
// finally re-homing every evicted cache on a different storage segment.
// routes[j] entries are updated in place on success; on failure every
// reservation and route is restored exactly. This mirrors classic rip-up-
// and-reroute.
func (r *router) ripUpAndRetry(id int, t sched.Task, src, dst NodeID, routes []Route) (Route, error) {
	tw := span(t)
	// Candidate victims: routes whose live window overlaps t's. Stored
	// routes come first, longest cache first (long caches are the usual
	// blockers); direct routes can also be evicted and re-routed along an
	// alternate path.
	type victim struct {
		idx   int
		cache int
	}
	var victims []victim
	for j, route := range routes {
		if r.pinned[j] {
			// Executed before the fault: history cannot be re-routed.
			continue
		}
		if overlaps(span(route.Task), tw) {
			victims = append(victims, victim{j, route.Task.CacheDuration()})
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		sa, sb := routes[victims[a].idx].Task.Kind == sched.Stored,
			routes[victims[b].idx].Task.Kind == sched.Stored
		if sa != sb {
			return sa
		}
		if victims[a].cache != victims[b].cache {
			return victims[a].cache > victims[b].cache
		}
		return victims[a].idx < victims[b].idx
	})

	saved := make(map[int]Route)
	var evicted []int
	rebuild := func() {
		kept := make([]Route, 0, len(routes))
		for j, route := range routes {
			if _, gone := saved[j]; !gone {
				kept = append(kept, route)
			}
		}
		r.rebuildUsed(kept)
	}
	rollback := func(rehomed []int) {
		r.occ.release(id)
		for _, j := range rehomed {
			r.occ.release(j)
		}
		for j, old := range saved {
			r.occ.release(j) // in case it was re-homed
			routes[j] = old
			r.applyReservations(j, old)
		}
		r.rebuildUsed(routes)
	}

	// rehome re-routes a saved victim: caches move to a different storage
	// segment (their previous one is banned so they cannot land back in t's
	// way); direct transports take whatever conflict-free path remains.
	rehome := func(j int, old Route) (Route, error) {
		if old.Task.Unit {
			// The unit node is fixed; re-homing just finds alternate legs.
			vSrc := old.OutNodes[0]
			vDst := old.FetchNodes[len(old.FetchNodes)-1]
			return r.routeUnit(j, old.Task, vSrc, vDst)
		}
		if old.Task.Kind == sched.Stored {
			r.bannedStorage = map[EdgeID]bool{old.StorageEdge: true}
			vSrc, vDst := old.OutNodes[0], old.FetchNodes[len(old.FetchNodes)-1]
			rerouted, err := r.routeStored(j, old.Task, vSrc, vDst)
			r.bannedStorage = nil
			return rerouted, err
		}
		vSrc, vDst := old.OutNodes[0], old.OutNodes[len(old.OutNodes)-1]
		return r.routeDirect(j, old.Task, vSrc, vDst)
	}

	// Phase 1: single-victim attempts — evict one route, place t, re-home
	// the victim; fully undone if any step fails.
	var firstErr error
	for _, v := range victims {
		j := v.idx
		old := routes[j]
		saved[j] = old
		r.occ.release(j)
		rebuild()
		newRoute, err := r.routeTask(id, t, src, dst)
		if err == nil {
			rerouted, rhErr := rehome(j, old)
			if rhErr == nil {
				routes[j] = rerouted
				return newRoute, nil
			}
			r.occ.release(id)
			err = rhErr
		}
		if firstErr == nil {
			firstErr = err
		}
		delete(saved, j)
		r.applyReservations(j, old)
		r.rebuildUsed(routes)
	}

	// Phase 2: cumulative evictions — keep evicting the top victims until t
	// routes, then re-home them all; rolled back entirely on failure.
	var (
		newRoute Route
		routeErr error
		ok       bool
	)
	for k := 0; k < len(victims) && k < maxEvictions; k++ {
		j := victims[k].idx
		saved[j] = routes[j]
		evicted = append(evicted, j)
		r.occ.release(j)
		rebuild()
		newRoute, routeErr = r.routeTask(id, t, src, dst)
		if routeErr == nil {
			ok = true
			break
		}
	}
	if !ok {
		rollback(nil)
		if routeErr == nil {
			routeErr = firstErr
		}
		if routeErr == nil {
			routeErr = fmt.Errorf("arch: no overlapping route to evict")
		}
		return Route{}, fmt.Errorf("arch: routing failed even after rip-up: %w", routeErr)
	}
	var rehomed []int
	for _, j := range evicted {
		rerouted, err := rehome(j, saved[j])
		if err != nil {
			rollback(rehomed)
			return Route{}, fmt.Errorf("arch: rip-up could not re-home a route: %w", err)
		}
		routes[j] = rerouted
		rehomed = append(rehomed, j)
	}
	return newRoute, nil
}
