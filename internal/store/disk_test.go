package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestDisk(t *testing.T, opts DiskOptions) *Disk {
	t.Helper()
	d, err := OpenDisk(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	key := "sched|abc123|d4|u10|m0|e0|tl0"
	payload := []byte(`{"makespan":42}`)

	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: want ErrNotFound, got %v", err)
	}
	if err := d.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip: got %s want %s", got, payload)
	}
	// A different key with the same payload is an independent entry.
	if _, err := d.Get(key + "|other"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unrelated key: want ErrNotFound, got %v", err)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d2.Get("k"); err != nil || string(got) != "1" {
		t.Fatalf("after reopen: got %s, %v", got, err)
	}
}

// Corrupt and truncated entries — a replica crashed mid-write before the
// rename, or the disk ate the file — must read as misses, never as errors
// that could fail a job.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	key := "corrupt-key"
	if err := d.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	path := d.entryPath(key)

	for name, garbage := range map[string][]byte{
		"truncated": []byte(`{"version":"flowsyn-store/v1","key":"corrupt-`),
		"not-json":  []byte("\x00\x01garbage"),
		"empty":     {},
	} {
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s entry: want ErrNotFound, got %v", name, err)
		}
	}
}

func TestDiskVersionMismatchIsMiss(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	key := "versioned-key"
	if err := d.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry as a future store version: this replica must not
	// trust it.
	env := envelope{Version: "flowsyn-store/v999", Key: key, Payload: json.RawMessage(`{"ok":true}`)}
	data, _ := json.Marshal(env)
	if err := os.WriteFile(d.entryPath(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("version mismatch: want ErrNotFound, got %v", err)
	}
}

func TestDiskKeyMismatchIsMiss(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	if err := d.Put("key-a", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate an aliasing bug: key-b's entry file carrying key-a's envelope.
	data, err := os.ReadFile(d.entryPath("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(d.entryPath("key-b")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.entryPath("key-b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("key-b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("foreign envelope: want ErrNotFound, got %v", err)
	}
}

// Concurrent writers on one key must never produce a torn read: every Get
// during the storm sees a complete envelope from one writer or another.
func TestDiskConcurrentWritersOneKey(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	const key = "contended"
	const writers = 8
	const rounds = 25

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				payload := fmt.Sprintf(`{"writer":%d,"round":%d}`, w, i)
				if err := d.Put(key, []byte(payload)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			payload, err := d.Get(key)
			if errors.Is(err, ErrNotFound) {
				continue // nothing published yet
			}
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			var doc struct{ Writer, Round int }
			if err := json.Unmarshal(payload, &doc); err != nil {
				t.Errorf("torn read: %s: %v", payload, err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	payload, err := d.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct{ Writer, Round int }
	if err := json.Unmarshal(payload, &doc); err != nil {
		t.Fatalf("final entry unreadable: %v", err)
	}
	if doc.Round != rounds-1 {
		t.Fatalf("final entry is not a last-round write: %+v", doc)
	}
}

func TestDiskClaimExcludes(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	l1, err := d.Claim("k", "replica-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Claim("k", "replica-2"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second claim: want ErrLeaseHeld, got %v", err)
	}
	l1.Release()
	l2, err := d.Claim("k", "replica-2")
	if err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	l2.Release()
	l2.Release() // idempotent
}

// A crashed claimant stops heartbeating; its lease must become stealable
// after the TTL so the key cannot wedge the fleet.
func TestDiskLeaseExpiryAfterCrash(t *testing.T) {
	d := openTestDisk(t, DiskOptions{LeaseTTL: 50 * time.Millisecond})
	// Simulate the crash by writing a lease file directly (no heartbeat
	// goroutine behind it).
	doc, _ := json.Marshal(leaseDoc{
		Owner:   "crashed-replica",
		Expires: time.Now().Add(50 * time.Millisecond).UTC().Format(time.RFC3339Nano),
	})
	path := d.leasePath("k")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Claim("k", "live-replica"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("live lease: want ErrLeaseHeld, got %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	l, err := d.Claim("k", "live-replica")
	if err != nil {
		t.Fatalf("expired lease not stolen: %v", err)
	}
	l.Release()
}

// A corrupt lease file (crash mid-write) counts as expired and is stolen.
func TestDiskCorruptLeaseIsStolen(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	path := d.leasePath("k")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := d.Claim("k", "replica")
	if err != nil {
		t.Fatalf("corrupt lease not stolen: %v", err)
	}
	l.Release()
}

// A live claimant's heartbeat keeps pushing the expiry horizon, so a lease
// with a short TTL stays held well past it while the owner lives.
func TestDiskHeartbeatKeepsLeaseAlive(t *testing.T) {
	d := openTestDisk(t, DiskOptions{LeaseTTL: 60 * time.Millisecond})
	l, err := d.Claim("k", "replica-1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	deadline := time.Now().Add(200 * time.Millisecond) // > 3 TTLs
	for time.Now().Before(deadline) {
		if _, err := d.Claim("k", "replica-2"); !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("lease lost while owner alive: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Exactly one of many racing claimants may win a cold key.
func TestDiskClaimRace(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	const racers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var winners []Lease
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := d.Claim("k", fmt.Sprintf("replica-%d", i))
			if err == nil {
				mu.Lock()
				winners = append(winners, l)
				mu.Unlock()
			} else if !errors.Is(err, ErrLeaseHeld) {
				t.Errorf("claim: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if len(winners) != 1 {
		t.Fatalf("want exactly 1 winner, got %d", len(winners))
	}
	winners[0].Release()
}
