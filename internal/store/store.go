// Package store implements the persistent, shared artifact store of the
// distributed serve path: a content-addressed key/value store for solve
// artifacts (canonical assay fingerprint + semantic options on the key side,
// versioned JSON envelopes on the value side) plus cross-replica single-flight
// leases, so a fleet of flowsynd replicas sharing one store performs each
// expensive solve exactly once and every restart starts warm.
//
// The reference backend is Disk: a sharded directory tree with atomic
// write-then-rename publication, tolerant of corrupt or truncated entries
// (they read as misses, never as errors that fail a job). The Store and Lease
// interfaces are deliberately tiny so network backends (redis, S3) can plug
// in behind the same service-layer wiring.
package store

import (
	"errors"
	"time"
)

// Errors returned by Store implementations. Compare with errors.Is.
var (
	// ErrNotFound reports a Get miss: no entry, a corrupt/truncated entry,
	// or an entry written by an incompatible store version.
	ErrNotFound = errors.New("store: entry not found")
	// ErrLeaseHeld reports a Claim on a key whose lease is live in another
	// owner; the caller should wait for the entry to appear or for the
	// lease to expire.
	ErrLeaseHeld = errors.New("store: lease held by another owner")
)

// Store is a persistent content-addressed artifact store shared by every
// replica of a fleet.
type Store interface {
	// Get returns the payload stored under key, or ErrNotFound. Damaged or
	// version-incompatible entries are misses, not errors.
	Get(key string) ([]byte, error)
	// Put durably publishes payload under key. Concurrent writers of one
	// key are safe; last writer wins atomically (readers never observe a
	// partial entry).
	Put(key string, payload []byte) error
	// Claim takes the cross-replica single-flight lease on key: the caller
	// becomes the fleet-wide solver for that key until it calls Release or
	// crashes (the lease then expires after its TTL despite heartbeats
	// having kept it alive while the owner lived). A live lease held
	// elsewhere returns ErrLeaseHeld.
	Claim(key, owner string) (Lease, error)
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// Lease is a held single-flight claim. The implementation heartbeats it in
// the background so it only expires when the owner actually died.
type Lease interface {
	// Release ends the claim and stops the heartbeat. Idempotent.
	Release()
}

// DefaultLeaseTTL is the lease expiry horizon: a crashed claimant's key
// becomes stealable after this long without a heartbeat. Heartbeats refresh
// the lease every TTL/3, so a live owner never expires.
const DefaultLeaseTTL = 10 * time.Second
