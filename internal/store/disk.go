package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Version is the envelope format version. Entries written under a different
// version read as misses, so a format change invalidates the shared store
// cleanly instead of feeding stale payloads to newer replicas.
const Version = "flowsyn-store/v1"

// envelope is the on-disk entry format: the payload wrapped with enough
// metadata to reject foreign, damaged or outdated entries on read.
type envelope struct {
	Version string `json:"version"`
	// Key is the full cache key the entry was stored under; Get rejects an
	// entry whose key does not match (hash aliasing can only come from a
	// bug, and a wrong payload must never be served).
	Key     string          `json:"key"`
	Created string          `json:"created"`
	Payload json.RawMessage `json:"payload"`
}

// leaseDoc is the on-disk lease format.
type leaseDoc struct {
	Owner string `json:"owner"`
	// Expires is the steal horizon (RFC3339Nano); heartbeats push it
	// forward, so it only passes when the owner stopped heartbeating.
	Expires string `json:"expires"`
}

// Disk is the reference Store: a sharded directory tree shared between
// replicas (typically on one host or a shared filesystem). Entries are
// published with write-then-rename, so concurrent writers and readers of one
// key are safe without locks.
type Disk struct {
	root     string
	leaseTTL time.Duration
}

// DiskOptions tunes a disk store.
type DiskOptions struct {
	// LeaseTTL is the single-flight lease expiry horizon (see
	// DefaultLeaseTTL); 0 selects the default.
	LeaseTTL time.Duration
}

// OpenDisk opens (creating if needed) a disk store rooted at dir.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	root := filepath.Join(dir, "v1")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Disk{root: root, leaseTTL: opts.LeaseTTL}, nil
}

// entryPath returns the sharded path of key's entry file. Keys are hashed:
// they contain option separators unfit for filenames, and hashing spreads
// entries uniformly over the 256 shard directories.
func (d *Disk) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.root, name[:2], name+".json")
}

func (d *Disk) leasePath(key string) string {
	return d.entryPath(key) + ".lease"
}

// Get implements Store. Anything that prevents decoding a valid, matching
// envelope — missing file, truncated write from a crashed replica, version
// bump, key mismatch — is a miss.
func (d *Disk) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(d.entryPath(key))
	if err != nil {
		return nil, ErrNotFound
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, ErrNotFound
	}
	if env.Version != Version || env.Key != key || len(env.Payload) == 0 {
		return nil, ErrNotFound
	}
	return env.Payload, nil
}

// Put implements Store: marshal the envelope, write it to a temp file in the
// shard directory, fsync-free rename into place. Readers see either the old
// entry or the complete new one, never a torn write.
func (d *Disk) Put(key string, payload []byte) error {
	env := envelope{
		Version: Version,
		Key:     key,
		Created: time.Now().UTC().Format(time.RFC3339Nano),
		Payload: json.RawMessage(payload),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", key, err)
	}
	return atomicWrite(d.entryPath(key), data)
}

// atomicWrite publishes data at path via a same-directory temp file and
// rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Claim implements Store. The lease file is created O_EXCL, so exactly one
// replica wins a cold key; an expired lease (crashed claimant) is stolen by
// removing it and retrying once.
func (d *Disk) Claim(key, owner string) (Lease, error) {
	path := d.leasePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			doc, _ := json.Marshal(leaseDoc{
				Owner:   owner,
				Expires: time.Now().Add(d.leaseTTL).UTC().Format(time.RFC3339Nano),
			})
			_, werr := f.Write(doc)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("store: write lease %s: %w", key, err)
			}
			l := &diskLease{path: path, owner: owner, ttl: d.leaseTTL, stop: make(chan struct{})}
			go l.heartbeat()
			return l, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if !leaseExpired(path) {
			return nil, ErrLeaseHeld
		}
		// The claimant died: its heartbeat stopped and the lease passed its
		// expiry horizon. Steal by removing and retrying the exclusive
		// create — at most one stealer wins the O_EXCL race.
		os.Remove(path)
	}
	return nil, ErrLeaseHeld
}

// leaseExpired reports whether the lease file at path is stale: unreadable or
// corrupt leases (a crash mid-write) count as expired, so they cannot wedge a
// key forever.
func leaseExpired(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		// Likely released between our failed create and this read; treat as
		// expired so the caller retries the claim.
		return true
	}
	var doc leaseDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return true
	}
	exp, err := time.Parse(time.RFC3339Nano, doc.Expires)
	if err != nil {
		return true
	}
	return time.Now().After(exp)
}

// Close implements Store. The disk backend holds no resources beyond leases,
// which their owners release individually.
func (d *Disk) Close() error { return nil }

// diskLease heartbeats its file every ttl/3 so the lease expires only when
// the owner process died.
type diskLease struct {
	path  string
	owner string
	ttl   time.Duration

	once sync.Once
	stop chan struct{}
}

func (l *diskLease) heartbeat() {
	t := time.NewTicker(l.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			doc, _ := json.Marshal(leaseDoc{
				Owner:   l.owner,
				Expires: time.Now().Add(l.ttl).UTC().Format(time.RFC3339Nano),
			})
			// Atomic replace: a reader mid-steal never sees a torn lease.
			// If the file vanished (forced steal), the rename recreates it —
			// the window is the owner's own TTL violation, accepted as
			// duplicate work, never wrong results.
			atomicWrite(l.path, doc)
		}
	}
}

func (l *diskLease) Release() {
	l.once.Do(func() {
		close(l.stop)
		os.Remove(l.path)
	})
}
