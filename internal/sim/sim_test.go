package sim

import (
	"strings"
	"testing"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

func simulatorFor(t *testing.T, name string) (*Simulator, *sched.Schedule, *arch.Result) {
	t.Helper()
	b := assay.MustGet(name)
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{
		Devices: b.Devices, Transport: b.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := arch.NewGrid(b.GridRows, b.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arch.Synthesize(s, grid, arch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(res, s), s, res
}

func TestSnapshotStates(t *testing.T) {
	sim, s, res := simulatorFor(t, "RA30")
	// At every interesting moment the snapshot must be internally
	// consistent: used edges have states, unused edges have none.
	usedSet := res.UsedEdgeSet()
	for _, ts := range sim.InterestingTimes() {
		snap := sim.At(ts)
		if len(snap.Segment) != len(res.UsedEdges) {
			t.Fatalf("t=%d: %d segment states for %d used edges", ts, len(snap.Segment), len(res.UsedEdges))
		}
		for e, st := range snap.Segment {
			if !usedSet[e] {
				t.Fatalf("t=%d: state %v for unused edge %d", ts, st, e)
			}
		}
		if snap.Time < 0 || snap.Time > s.Makespan {
			t.Fatalf("snapshot outside execution window: %d", snap.Time)
		}
	}
}

func TestSnapshotCaching(t *testing.T) {
	sim, s, _ := simulatorFor(t, "RA30")
	// Peak cached samples over the timeline equals the schedule's storage
	// capacity.
	peak := 0
	for ts := 0; ts <= s.Makespan; ts++ {
		if c := sim.At(ts).CachedSamples; c > peak {
			peak = c
		}
	}
	if want := s.StorageCapacity(); peak != want {
		t.Errorf("peak cached samples = %d, want %d", peak, want)
	}
}

func TestSnapshotRunningOps(t *testing.T) {
	sim, s, _ := simulatorFor(t, "PCR")
	// Each operation must be visible as running at its midpoint.
	for _, a := range s.Assignments {
		mid := (a.Start + a.End) / 2
		snap := sim.At(mid)
		name := s.Graph.Op(a.Op).Name
		found := false
		for _, op := range snap.RunningOps {
			if op == name {
				found = true
			}
		}
		if !found {
			t.Errorf("op %s not running at its midpoint %d: %v", name, mid, snap.RunningOps)
		}
	}
}

func TestUtilization(t *testing.T) {
	sim, s, res := simulatorFor(t, "RA30")
	u := sim.Utilization()
	if u.Makespan != s.Makespan {
		t.Errorf("makespan = %d, want %d", u.Makespan, s.Makespan)
	}
	if u.MeanUtilization <= 0 || u.MeanUtilization > 1 {
		t.Errorf("mean utilization = %v, want in (0,1]", u.MeanUtilization)
	}
	if u.CacheSeconds <= 0 {
		t.Error("RA30 must cache fluids")
	}
	for e, busy := range u.BusySeconds {
		if busy > u.Makespan {
			t.Errorf("edge %d busy %d s > makespan %d", e, busy, u.Makespan)
		}
		if !res.UsedEdgeSet()[e] {
			t.Errorf("busy seconds recorded for unused edge %d", e)
		}
	}
}

func TestTimeline(t *testing.T) {
	sim, s, _ := simulatorFor(t, "PCR")
	tl := sim.Timeline(50)
	if len(tl) != s.Makespan/50+1 {
		t.Errorf("timeline length = %d, want %d", len(tl), s.Makespan/50+1)
	}
	tl1 := sim.Timeline(0) // step clamps to 1
	if len(tl1) != s.Makespan+1 {
		t.Errorf("unit timeline length = %d, want %d", len(tl1), s.Makespan+1)
	}
}

func TestRenderASCII(t *testing.T) {
	sim, _, res := simulatorFor(t, "RA30")
	var caching *Snapshot
	for _, ts := range sim.InterestingTimes() {
		snap := sim.At(ts)
		if snap.CachedSamples > 0 {
			caching = snap
			break
		}
	}
	if caching == nil {
		t.Fatal("no caching moment found in RA30")
	}
	out := RenderASCII(res, caching)
	if !strings.Contains(out, "[d1]") {
		t.Error("ASCII render missing device label")
	}
	if !strings.Contains(out, "#") {
		t.Error("ASCII render missing caching segment")
	}
	if !strings.Contains(out, "legend") {
		t.Error("ASCII render missing legend")
	}
}

func TestRenderSVG(t *testing.T) {
	sim, _, res := simulatorFor(t, "RA30")
	snap := sim.At(sim.InterestingTimes()[0])
	svg := RenderSVG(res, snap)
	for _, want := range []string{"<svg", "</svg>", "<line", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestDescribe(t *testing.T) {
	sim, _, _ := simulatorFor(t, "PCR")
	if d := sim.At(0).Describe(); !strings.Contains(d, "t=0s") {
		t.Errorf("Describe = %q", d)
	}
}
