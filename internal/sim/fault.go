package sim

import (
	"fmt"

	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// FaultKind classifies what broke on the chip.
type FaultKind int

const (
	// FaultDevice marks a device chamber failed: it can execute no further
	// operations. Its interface ports stay usable, so a result already
	// computed inside can still be moved out.
	FaultDevice FaultKind = iota
	// FaultChannel marks a channel segment (its valve pair) failed: no
	// re-planned transport or storage may use it.
	FaultChannel
	// FaultStorage marks a channel segment degraded: it still carries moving
	// fluid, but can no longer hold a cached sample reliably.
	FaultStorage
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDevice:
		return "device"
	case FaultChannel:
		return "channel"
	case FaultStorage:
		return "degraded-storage"
	default:
		return fmt.Sprintf("fault-kind(%d)", int(k))
	}
}

// Fault is one mid-execution failure, detected at Time. Operations started
// strictly before Time keep their devices and times (along with the internal
// transports feeding them, which all complete before Time); everything else
// is re-planned around the failed resource by the recovery path.
type Fault struct {
	// Kind classifies the failed resource.
	Kind FaultKind
	// Time is the detection instant in seconds.
	Time int
	// Device is the failed device index (FaultDevice only).
	Device int
	// Edge is the failed or degraded channel segment (FaultChannel and
	// FaultStorage).
	Edge arch.EdgeID
}

// String renders the fault for logs.
func (f Fault) String() string {
	switch f.Kind {
	case FaultDevice:
		return fmt.Sprintf("device %d fails at t=%d", f.Device, f.Time)
	case FaultChannel:
		return fmt.Sprintf("channel segment %d fails at t=%d", f.Edge, f.Time)
	case FaultStorage:
		return fmt.Sprintf("storage on segment %d degrades at t=%d", f.Edge, f.Time)
	default:
		return fmt.Sprintf("unknown fault at t=%d", f.Time)
	}
}

// Validate checks the fault against the execution it is injected into: the
// instant must not precede the start, and the named resource must exist.
func (f Fault) Validate(s *sched.Schedule, res *arch.Result) error {
	if f.Time < 0 {
		return fmt.Errorf("sim: fault time %d before execution start", f.Time)
	}
	switch f.Kind {
	case FaultDevice:
		if f.Device < 0 || f.Device >= s.Devices {
			return fmt.Errorf("sim: fault names device %d of %d", f.Device, s.Devices)
		}
	case FaultChannel, FaultStorage:
		if int(f.Edge) < 0 || int(f.Edge) >= res.Grid.NumEdges() {
			return fmt.Errorf("sim: fault names channel segment %d outside %s grid", f.Edge, res.Grid)
		}
	default:
		return fmt.Errorf("sim: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// Inject adds a fault to the simulator: snapshots at or after the fault's
// detection instant render the failed resource (Failed/Degraded segment
// states, FailedDevices), so Timeline animations show the faulted chip.
func (sim *Simulator) Inject(f Fault) {
	sim.faults = append(sim.faults, f)
}

// Prefix is the frozen part of an execution cut at a fault instant: the work
// a fault cannot undo, extracted for the recovery path to pin.
type Prefix struct {
	// Time is the instant the prefix was cut at.
	Time int
	// Assignments are the schedule rows of every operation started strictly
	// before Time, with their original devices and times. The set is
	// ancestor-closed: a parent always starts before its children.
	Assignments []sched.Assignment
	// DepartOffsets are the recorded departure offsets of every transported
	// edge whose consumer is preserved — copying them verbatim is what makes
	// the preserved transport tasks reproduce byte-identically when the
	// recovered schedule re-derives its workload.
	DepartOffsets map[seqgraph.Edge]int
	// Tasks are the internal transport tasks feeding preserved operations.
	// Each completes strictly before Time (it ends by its consumer's start).
	Tasks []sched.Task
	// Routes are the routed realizations of Tasks, verbatim from the original
	// architecture, in original route order.
	Routes []arch.Route

	pinned map[seqgraph.OpID]bool
}

// Pinned reports whether op is part of the preserved prefix.
func (p *Prefix) Pinned(op seqgraph.OpID) bool { return p.pinned[op] }

// ExecutionPrefix freezes the work a fault detected at time t cannot undo:
// operations started strictly before t (completed or in flight — a running
// device finishes its committed reaction), the departure slots of their
// inputs, and the internal routes that delivered those inputs. Chip-boundary
// I/O transports are deliberately not part of the prefix: their windows are
// globally serialized over the shared ports, so the recovery path re-plans
// them wholesale.
func (sim *Simulator) ExecutionPrefix(t int) *Prefix {
	p := &Prefix{
		Time:          t,
		DepartOffsets: make(map[seqgraph.Edge]int),
		pinned:        make(map[seqgraph.OpID]bool),
	}
	for _, a := range sim.sched.Assignments {
		if a.Start < t {
			p.pinned[a.Op] = true
			p.Assignments = append(p.Assignments, a)
		}
	}
	for e, off := range sim.sched.DepartOffsets {
		if p.pinned[e.Child] {
			p.DepartOffsets[e] = off
		}
	}
	for _, route := range sim.res.Routes {
		task := route.Task
		if task.IO == sched.Internal && p.pinned[task.Edge.Child] {
			p.Tasks = append(p.Tasks, task)
			p.Routes = append(p.Routes, route)
		}
	}
	return p
}
