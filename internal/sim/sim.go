// Package sim replays a synthesized biochip executing its schedule,
// reporting which channel segments transport or cache fluids at any moment —
// the information behind the paper's Fig. 11 execution snapshots — together
// with channel-utilization statistics.
package sim

import (
	"fmt"
	"sort"

	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
)

// SegmentState is the role of a channel segment at one instant.
type SegmentState int

const (
	// Unused means the segment was pruned from the chip.
	Unused SegmentState = iota
	// Idle means the segment is built but carries nothing right now.
	Idle
	// Transporting means a fluid is moving through the segment.
	Transporting
	// Caching means the segment holds a stored fluid (distributed storage).
	Caching
	// Failed means the segment's valve pair broke (an injected FaultChannel):
	// nothing may move through or be stored on it from the fault on.
	Failed
	// Degraded means the segment still transports but can no longer hold a
	// cached sample (an injected FaultStorage).
	Degraded
)

// String names the state.
func (s SegmentState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Transporting:
		return "transporting"
	case Caching:
		return "caching"
	case Failed:
		return "failed"
	case Degraded:
		return "degraded"
	default:
		return "unused"
	}
}

// Simulator replays a synthesis result over time.
type Simulator struct {
	res    *arch.Result
	sched  *sched.Schedule
	faults []Fault
}

// New builds a simulator for the given architecture and schedule.
func New(res *arch.Result, s *sched.Schedule) *Simulator {
	return &Simulator{res: res, sched: s}
}

// Snapshot is the chip state at one instant.
type Snapshot struct {
	// Time is the snapshot instant in seconds.
	Time int
	// OutOfRange marks snapshots taken before the execution starts (t < 0)
	// or after it fully drains (t > Horizon()): the segment map is still
	// rendered (all idle, faults applied) but carries no execution state, and
	// callers should not mistake it for a quiet moment mid-run.
	OutOfRange bool
	// Segment maps every grid edge to its state at Time.
	Segment map[arch.EdgeID]SegmentState
	// RunningOps lists operations executing at Time, in OpID order.
	RunningOps []string
	// ActiveRoutes indexes the routes with live transports at Time.
	ActiveRoutes []int
	// CachedSamples counts fluids held in channel storage at Time.
	CachedSamples int
	// UnitSamples counts fluids resident in the dedicated storage unit at
	// Time (always zero for distributed-strategy schedules).
	UnitSamples int
	// FailedDevices lists devices failed by injected faults at Time.
	FailedDevices []int
}

// Horizon is the instant the chip fully drains: the schedule makespan
// extended by any route still moving fluid past it (with boundary I/O
// modeled, the last product's move-out completes after its operation — and
// with it the makespan — ends). Utilization and Timeline integrate to the
// horizon, not the makespan, so those tail seconds are neither lost in
// animations nor silently diluted out of the utilization denominator.
func (sim *Simulator) Horizon() int {
	h := sim.sched.Makespan
	for _, route := range sim.res.Routes {
		end := route.Task.Arrive
		if route.Task.Kind == sched.Stored {
			end = route.Task.FetchEnd
		}
		if end > h {
			h = end
		}
	}
	return h
}

// At computes the chip state at time t.
func (sim *Simulator) At(t int) *Snapshot {
	snap := &Snapshot{
		Time:    t,
		Segment: make(map[arch.EdgeID]SegmentState, sim.res.Grid.NumEdges()),
	}
	if t < 0 || t > sim.Horizon() {
		snap.OutOfRange = true
	}
	for _, e := range sim.res.UsedEdges {
		snap.Segment[e] = Idle
	}
	in := func(start, end int) bool { return t >= start && t < end }
	for i, route := range sim.res.Routes {
		task := route.Task
		active := false
		if task.Kind == sched.Direct {
			if in(task.Depart, task.Arrive) {
				active = true
				for _, e := range route.OutEdges {
					snap.Segment[e] = Transporting
				}
			}
		} else if task.Unit {
			// The fluid waits in the dedicated unit between its two transport
			// legs; no channel segment caches it.
			if in(task.OutStart, task.OutEnd) {
				active = true
				for _, e := range route.OutEdges {
					snap.Segment[e] = Transporting
				}
			}
			if in(task.OutEnd, task.FetchStart) {
				active = true
				snap.UnitSamples++
			}
			if in(task.FetchStart, task.FetchEnd) {
				active = true
				for _, e := range route.FetchEdges {
					snap.Segment[e] = Transporting
				}
			}
		} else {
			if in(task.OutStart, task.OutEnd) {
				active = true
				for _, e := range route.OutEdges {
					snap.Segment[e] = Transporting
				}
				snap.Segment[route.StorageEdge] = Transporting
			}
			if in(task.OutEnd, task.FetchStart) {
				active = true
				snap.Segment[route.StorageEdge] = Caching
				snap.CachedSamples++
			}
			if in(task.FetchStart, task.FetchEnd) {
				active = true
				snap.Segment[route.StorageEdge] = Transporting
				for _, e := range route.FetchEdges {
					snap.Segment[e] = Transporting
				}
			}
		}
		if active {
			snap.ActiveRoutes = append(snap.ActiveRoutes, i)
		}
	}
	for _, a := range sim.sched.Assignments {
		if in(a.Start, a.End) {
			snap.RunningOps = append(snap.RunningOps, sim.sched.Graph.Op(a.Op).Name)
		}
	}
	sort.Strings(snap.RunningOps)
	// Injected faults overlay the replayed state from their detection
	// instant on: a failed segment shows Failed whatever the original plan
	// had it doing, a degraded one shows Degraded unless fluid is actively
	// moving through it (it still transports, it just cannot hold a cache).
	for _, f := range sim.faults {
		if t < f.Time {
			continue
		}
		switch f.Kind {
		case FaultDevice:
			snap.FailedDevices = append(snap.FailedDevices, f.Device)
		case FaultChannel:
			if _, built := snap.Segment[f.Edge]; built {
				snap.Segment[f.Edge] = Failed
			}
		case FaultStorage:
			if st, built := snap.Segment[f.Edge]; built && st != Transporting {
				if st == Caching {
					snap.CachedSamples--
				}
				snap.Segment[f.Edge] = Degraded
			}
		}
	}
	sort.Ints(snap.FailedDevices)
	return snap
}

// Utilization summarizes how efficiently the built channel segments are
// used over the whole execution — the efficiency argument of the paper's
// Section 1 ("the efficiency of channels and valves is improved").
type Utilization struct {
	// Makespan is the schedule makespan t^E.
	Makespan int
	// Horizon is the instant the chip fully drains — at least Makespan, and
	// later when boundary I/O keeps moving the last product out past it. It
	// is the denominator of MeanUtilization: dividing by the makespan alone
	// over-counted executions whose busy seconds extend beyond it.
	Horizon int
	// BusySeconds maps each used edge to its total busy time.
	BusySeconds map[arch.EdgeID]int
	// TransportSeconds and CacheSeconds split the busy time by role.
	TransportSeconds, CacheSeconds int
	// UnitSeconds is the total fluid-seconds spent inside the dedicated
	// storage unit (not channel time — the unit is off the grid).
	UnitSeconds int
	// MeanUtilization is mean(busy)/horizon over used edges, in [0,1].
	MeanUtilization float64
}

// Utilization integrates segment business over the execution.
func (sim *Simulator) Utilization() *Utilization {
	u := &Utilization{
		Makespan:    sim.sched.Makespan,
		Horizon:     sim.Horizon(),
		BusySeconds: make(map[arch.EdgeID]int, len(sim.res.UsedEdges)),
	}
	add := func(e arch.EdgeID, secs int) {
		if secs > 0 {
			u.BusySeconds[e] += secs
		}
	}
	for _, route := range sim.res.Routes {
		t := route.Task
		if t.Kind == sched.Direct {
			for _, e := range route.OutEdges {
				add(e, t.Arrive-t.Depart)
			}
			u.TransportSeconds += (t.Arrive - t.Depart) * len(route.OutEdges)
			continue
		}
		outD := t.OutEnd - t.OutStart
		fetchD := t.FetchEnd - t.FetchStart
		cacheD := t.FetchStart - t.OutEnd
		for _, e := range route.OutEdges {
			add(e, outD)
		}
		for _, e := range route.FetchEdges {
			add(e, fetchD)
		}
		if t.Unit {
			// The waiting happens inside the unit; no channel holds the fluid.
			u.TransportSeconds += outD*len(route.OutEdges) + fetchD*len(route.FetchEdges)
			u.UnitSeconds += cacheD
			continue
		}
		add(route.StorageEdge, outD+cacheD+fetchD)
		u.TransportSeconds += outD*(len(route.OutEdges)+1) + fetchD*(len(route.FetchEdges)+1)
		u.CacheSeconds += cacheD
	}
	if len(sim.res.UsedEdges) > 0 && u.Horizon > 0 {
		total := 0
		for _, e := range sim.res.UsedEdges {
			total += u.BusySeconds[e]
		}
		u.MeanUtilization = float64(total) / float64(len(sim.res.UsedEdges)*u.Horizon)
	}
	return u
}

// Timeline returns snapshots at every multiple of step across the execution
// (always including t=0), for animations and reports. It spans the full
// drain horizon, so executions whose boundary I/O outlives the makespan are
// animated to the end instead of being cut off mid-transport.
func (sim *Simulator) Timeline(step int) []*Snapshot {
	if step < 1 {
		step = 1
	}
	var out []*Snapshot
	for t, h := 0, sim.Horizon(); t <= h; t += step {
		out = append(out, sim.At(t))
	}
	return out
}

// InterestingTimes returns the moments when caching activity changes — good
// candidates for Fig. 11-style snapshots.
func (sim *Simulator) InterestingTimes() []int {
	set := map[int]bool{}
	for _, route := range sim.res.Routes {
		t := route.Task
		if t.Kind == sched.Stored {
			set[t.OutStart] = true
			set[t.OutEnd] = true
			set[t.FetchStart] = true
		} else {
			set[t.Depart] = true
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Describe renders a compact textual summary of a snapshot.
func (s *Snapshot) Describe() string {
	transporting, caching := 0, 0
	for _, st := range s.Segment {
		switch st {
		case Transporting:
			transporting++
		case Caching:
			caching++
		}
	}
	return fmt.Sprintf("t=%ds: ops %v, %d segment(s) transporting, %d caching",
		s.Time, s.RunningOps, transporting, caching)
}
