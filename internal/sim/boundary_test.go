package sim

import (
	"testing"

	"flowsyn/internal/sched"
)

// The half-open interval semantics of At: every phase owns its start instant
// and has released its end instant. These boundaries are exactly where the
// replay, the scheduler's exclusivity argument and the utilization integral
// must agree — an off-by-one here double-counts a segment at a phase handoff
// or drops a cached sample for one second.

// TestSnapshotStoredBoundaries walks a stored route's three phase boundaries.
func TestSnapshotStoredBoundaries(t *testing.T) {
	sim, _, res := simulatorFor(t, "RA30")
	idx := -1
	for i, r := range res.Routes {
		task := r.Task
		if task.Kind == sched.Stored && task.OutStart < task.OutEnd &&
			task.OutEnd < task.FetchStart && task.FetchStart < task.FetchEnd {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("RA30 has no stored route with three distinct phases")
	}
	route := res.Routes[idx]
	task := route.Task
	active := func(at int) bool {
		for _, r := range sim.At(at).ActiveRoutes {
			if r == idx {
				return true
			}
		}
		return false
	}

	cases := []struct {
		name    string
		at      int
		active  bool
		storage SegmentState
	}{
		// The move-out owns its start: fluid is on the channel at OutStart.
		{"OutStart", task.OutStart, true, Transporting},
		// At OutEnd the move-out has released the channel and the cache
		// phase owns the instant: the sample sits on the storage edge.
		{"OutEnd", task.OutEnd, true, Caching},
		// At FetchStart the cache phase has ended and the fetch owns the
		// instant: the storage edge transports again.
		{"FetchStart", task.FetchStart, true, Transporting},
		// At FetchEnd the route is fully drained and inactive.
		{"FetchEnd", task.FetchEnd, false, Idle},
	}
	for _, c := range cases {
		if got := active(c.at); got != c.active {
			t.Errorf("%s (t=%d): route active = %v, want %v", c.name, c.at, got, c.active)
		}
		if !c.active {
			continue // a released edge may be claimed by another route
		}
		if st := sim.At(c.at).Segment[route.StorageEdge]; st != c.storage {
			t.Errorf("%s (t=%d): storage edge %v, want %v", c.name, c.at, st, c.storage)
		}
	}

	// CachedSamples must flip exactly at the boundaries: counted at OutEnd,
	// gone at FetchStart (relative to a probe inside the cache window).
	mid := (task.OutEnd + task.FetchStart) / 2
	if sim.At(mid).CachedSamples < 1 {
		t.Errorf("no cached sample mid-cache at t=%d", mid)
	}
}

// TestSnapshotDirectBoundaries checks a direct transport's [Depart, Arrive)
// window.
func TestSnapshotDirectBoundaries(t *testing.T) {
	sim, _, res := simulatorFor(t, "RA30")
	idx := -1
	for i, r := range res.Routes {
		if r.Task.Kind == sched.Direct && r.Task.Depart < r.Task.Arrive {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("RA30 has no direct route")
	}
	task := res.Routes[idx].Task
	active := func(at int) bool {
		for _, r := range sim.At(at).ActiveRoutes {
			if r == idx {
				return true
			}
		}
		return false
	}
	if !active(task.Depart) {
		t.Errorf("direct route inactive at its departure t=%d", task.Depart)
	}
	if active(task.Arrive) {
		t.Errorf("direct route still active at its arrival t=%d", task.Arrive)
	}
	if task.Depart > 0 && active(task.Depart-1) {
		t.Errorf("direct route active before departure at t=%d", task.Depart-1)
	}
}

// TestFaultRendering covers the fault log/labels and the prefix membership
// helper.
func TestFaultRendering(t *testing.T) {
	for _, c := range []struct {
		fault Fault
		want  string
	}{
		{Fault{Kind: FaultDevice, Device: 2, Time: 130}, "device 2 fails at t=130"},
		{Fault{Kind: FaultChannel, Edge: 5, Time: 40}, "channel segment 5 fails at t=40"},
		{Fault{Kind: FaultStorage, Edge: 5, Time: 40}, "storage on segment 5 degrades at t=40"},
		{Fault{Kind: FaultKind(9), Time: 7}, "unknown fault at t=7"},
	} {
		if got := c.fault.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.fault, got, c.want)
		}
	}
	for k, want := range map[FaultKind]string{
		FaultDevice: "device", FaultChannel: "channel", FaultStorage: "degraded-storage",
		FaultKind(9): "fault-kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}

	sim, s, _ := simulatorFor(t, "PCR")
	prefix := sim.ExecutionPrefix(s.Makespan / 2)
	for _, a := range s.Assignments {
		if got, want := prefix.Pinned(a.Op), a.Start < s.Makespan/2; got != want {
			t.Errorf("Pinned(%d) = %v, want %v (start %d, cut %d)", a.Op, got, want, a.Start, s.Makespan/2)
		}
	}
}

// TestSnapshotOutOfRange probes At outside [0, Horizon]: the segment map is
// rendered, no execution state leaks in, and injected faults still overlay —
// the regression was Timeline and MeanUtilization trusting sched.Makespan
// while boundary I/O kept draining past it.
func TestSnapshotOutOfRange(t *testing.T) {
	sim, s, res := simulatorFor(t, "RA30")
	h := sim.Horizon()
	if h < s.Makespan {
		t.Fatalf("horizon %d < makespan %d", h, s.Makespan)
	}
	for _, c := range []struct {
		at  int
		out bool
	}{
		{-1, true}, {0, false}, {h, false}, {h + 1, true}, {h + 1000, true},
	} {
		if snap := sim.At(c.at); snap.OutOfRange != c.out {
			t.Errorf("At(%d).OutOfRange = %v, want %v", c.at, snap.OutOfRange, c.out)
		}
	}
	for _, at := range []int{-5, h + 7} {
		snap := sim.At(at)
		if len(snap.RunningOps) != 0 || len(snap.ActiveRoutes) != 0 || snap.CachedSamples != 0 {
			t.Errorf("out-of-range snapshot at t=%d carries execution state: %+v", at, snap)
		}
		if len(snap.Segment) != len(res.UsedEdges) {
			t.Errorf("t=%d: %d segment states for %d used edges", at, len(snap.Segment), len(res.UsedEdges))
		}
		for e, st := range snap.Segment {
			if st != Idle {
				t.Errorf("t=%d: edge %d is %v, want idle", at, e, st)
			}
		}
	}

	// Faults overlay out-of-range renders too: a failed segment stays failed
	// after the chip drains.
	sim.Inject(Fault{Kind: FaultChannel, Time: 0, Edge: res.UsedEdges[0]})
	if st := sim.At(h + 7).Segment[res.UsedEdges[0]]; st != Failed {
		t.Errorf("failed edge renders %v past the horizon, want failed", st)
	}

	// Timeline and utilization integrate to the horizon, not the makespan.
	if tl := sim.Timeline(1); len(tl) != h+1 {
		t.Errorf("unit timeline has %d snapshots, want horizon+1 = %d", len(tl), h+1)
	}
	if u := sim.Utilization(); u.Horizon != h {
		t.Errorf("utilization horizon %d, want %d", u.Horizon, h)
	}
}
