package sim

import (
	"testing"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

// pcrSimulator synthesizes the PCR benchmark with the deterministic
// list-scheduler + router pair, so every run of this file sees the identical
// execution.
func pcrSimulator(t *testing.T) (*Simulator, *sched.Schedule) {
	t.Helper()
	b := assay.MustGet("PCR")
	if !b.ModelIO {
		t.Fatal("PCR benchmark no longer models I/O; snapshot expectations below are stale")
	}
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{Devices: b.Devices, Transport: b.Transport})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := arch.NewGrid(b.GridRows, b.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arch.Synthesize(s, grid, arch.Options{ModelIO: b.ModelIO})
	if err != nil {
		t.Fatal(err)
	}
	return New(res, s), s
}

// segmentCounts tallies the Transporting and Caching segments of a snapshot.
func segmentCounts(snap *Snapshot) (transporting, caching int) {
	for _, st := range snap.Segment {
		switch st {
		case Transporting:
			transporting++
		case Caching:
			caching++
		}
	}
	return transporting, caching
}

// TestPCRSnapshotCounts pins the chip state of the deterministic PCR
// execution at fixed instants: reagent loading before any operation runs,
// single- and double-fluid caching phases, and the product unload tail at
// the makespan.
func TestPCRSnapshotCounts(t *testing.T) {
	sim, s := pcrSimulator(t)
	if s.Makespan != 310 {
		t.Fatalf("deterministic PCR schedule drifted: makespan %d, want 310", s.Makespan)
	}
	cases := []struct {
		time                  int
		transporting, caching int
		cached                int
	}{
		{time: 10, transporting: 2, caching: 0, cached: 0},  // reagents loading, nothing running
		{time: 60, transporting: 0, caching: 1, cached: 1},  // first intermediate parked in a channel
		{time: 185, transporting: 4, caching: 1, cached: 1}, // transports around a live cache
		{time: 190, transporting: 0, caching: 2, cached: 2}, // two fluids cached at once
		{time: 265, transporting: 3, caching: 0, cached: 0}, // all caches drained
		{time: 310, transporting: 2, caching: 0, cached: 0}, // product unloads at the makespan
	}
	for _, c := range cases {
		snap := sim.At(c.time)
		tr, ca := segmentCounts(snap)
		if tr != c.transporting || ca != c.caching || snap.CachedSamples != c.cached {
			t.Errorf("t=%d: transporting=%d caching=%d cached=%d, want %d/%d/%d",
				c.time, tr, ca, snap.CachedSamples, c.transporting, c.caching, c.cached)
		}
	}
}

// TestPCRSnapshotInternalConsistency cross-checks every interesting instant:
// the caching segment count must equal the cached-sample count (one fluid
// per storage segment), and every active route must touch at least one
// non-idle segment.
func TestPCRSnapshotInternalConsistency(t *testing.T) {
	sim, _ := pcrSimulator(t)
	for _, ts := range sim.InterestingTimes() {
		snap := sim.At(ts)
		_, caching := segmentCounts(snap)
		if caching != snap.CachedSamples {
			t.Errorf("t=%d: %d caching segments for %d cached samples", ts, caching, snap.CachedSamples)
		}
		busy := 0
		for _, st := range snap.Segment {
			if st != Idle {
				busy++
			}
		}
		if len(snap.ActiveRoutes) > 0 && busy == 0 {
			t.Errorf("t=%d: %d active routes but no busy segment", ts, len(snap.ActiveRoutes))
		}
	}
}
