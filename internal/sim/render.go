package sim

import (
	"fmt"
	"strings"

	"flowsyn/internal/arch"
)

// RenderASCII draws the chip state as ASCII art in the style of the paper's
// Fig. 11: devices as labelled boxes, switches as '+', channel segments as
// '-'/'|' when idle, '='/'!' while transporting and '#' while caching.
// Unused grid positions are blank.
func RenderASCII(res *arch.Result, snap *Snapshot) string {
	g := res.Grid
	// Canvas: each node occupies a 4-wide, 2-tall cell for legibility.
	const cw, ch = 6, 2
	w, h := (g.Cols-1)*cw+4, (g.Rows-1)*ch+1
	canvas := make([][]rune, h)
	for y := range canvas {
		canvas[y] = make([]rune, w)
		for x := range canvas[y] {
			canvas[y][x] = ' '
		}
	}
	put := func(x, y int, s string) {
		for i, r := range s {
			if x+i < w && y < h {
				canvas[y][x+i] = r
			}
		}
	}

	usedNode := make(map[arch.NodeID]bool)
	for _, e := range res.UsedEdges {
		u, v := g.Endpoints(e)
		usedNode[u] = true
		usedNode[v] = true
	}
	deviceAt := make(map[arch.NodeID]int)
	for d, p := range res.DevicePos {
		deviceAt[p] = d
		usedNode[p] = true
	}

	// Edges first, then nodes on top.
	for _, e := range res.UsedEdges {
		u, v := g.Endpoints(e)
		ru, cu := g.Coords(u)
		rv, cv := g.Coords(v)
		state := snap.Segment[e]
		if ru == rv { // horizontal
			y := ru * ch
			x0 := cu*cw + 2
			x1 := cv * cw
			ch := '-'
			switch state {
			case Transporting:
				ch = '='
			case Caching:
				ch = '#'
			case Failed:
				ch = 'x'
			case Degraded:
				ch = '~'
			}
			for x := x0; x <= x1+1; x++ {
				canvas[y][x] = ch
			}
		} else { // vertical
			x := cu * cw
			y0, y1 := ru*ch+1, rv*ch-1
			c := '|'
			switch state {
			case Transporting:
				c = '!'
			case Caching:
				c = '#'
			case Failed:
				c = 'x'
			case Degraded:
				c = '~'
			}
			for y := y0; y <= y1; y++ {
				if y < h {
					canvas[y][x] = c
				}
			}
		}
	}
	nDevices := len(res.DevicePos) - res.Ports
	for n := 0; n < g.NumNodes(); n++ {
		node := arch.NodeID(n)
		r, c := g.Coords(node)
		x, y := c*cw, r*ch
		if d, ok := deviceAt[node]; ok {
			switch {
			case d == nDevices && res.Ports > 0:
				put(x, y, "[IN]")
			case d == nDevices+1 && res.Ports > 0:
				put(x, y, "[OUT]")
			default:
				put(x, y, fmt.Sprintf("[d%d]", d+1))
			}
		} else if usedNode[node] {
			put(x, y, "+")
		} else {
			put(x, y, ".")
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", snap.Describe())
	for _, row := range canvas {
		line := strings.TrimRight(string(row), " ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString("legend: [dK] device  + switch  -| idle  =! transporting  # caching  x failed  ~ degraded  . unused\n")
	return b.String()
}

// RenderSVG draws the chip state as a standalone SVG document.
func RenderSVG(res *arch.Result, snap *Snapshot) string {
	g := res.Grid
	const cell = 60
	const margin = 40
	w := (g.Cols-1)*cell + 2*margin
	h := (g.Rows-1)*cell + 2*margin
	pos := func(n arch.NodeID) (int, int) {
		r, c := g.Coords(n)
		return margin + c*cell, margin + r*cell
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-family="monospace">t = %d s</text>`,
		margin, snap.Time)

	for _, e := range res.UsedEdges {
		u, v := g.Endpoints(e)
		x1, y1 := pos(u)
		x2, y2 := pos(v)
		color, width := "#999", 3
		switch snap.Segment[e] {
		case Transporting:
			color, width = "#1f77d0", 6
		case Caching:
			color, width = "#e07b1f", 6
		case Failed:
			color, width = "#d01f1f", 6
		case Degraded:
			color, width = "#b08db0", 5
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%d"/>`,
			x1, y1, x2, y2, color, width)
	}

	usedNode := make(map[arch.NodeID]bool)
	for _, e := range res.UsedEdges {
		u, v := g.Endpoints(e)
		usedNode[u] = true
		usedNode[v] = true
	}
	deviceAt := make(map[arch.NodeID]int)
	for d, p := range res.DevicePos {
		deviceAt[p] = d
	}
	nDevices := len(res.DevicePos) - res.Ports
	for n := 0; n < g.NumNodes(); n++ {
		node := arch.NodeID(n)
		x, y := pos(node)
		if d, ok := deviceAt[node]; ok {
			label := fmt.Sprintf("d%d", d+1)
			fill := "#cfe8cf"
			if res.Ports > 0 && d >= nDevices {
				fill = "#e8e0cf"
				if d == nDevices {
					label = "IN"
				} else {
					label = "OUT"
				}
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="36" height="36" fill="%s" stroke="black"/>`,
				x-18, y-18, fill)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle" font-family="monospace">%s</text>`,
				x, y+5, label)
		} else if usedNode[node] {
			fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="6" fill="white" stroke="black"/>`, x, y)
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}
