package core

import (
	"context"
	"fmt"
	"time"

	"flowsyn/internal/arch"
	"flowsyn/internal/phys"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// Stage names, in pipeline order.
const (
	// StageSchedule produces the scheduling-and-binding result (Section 3.1).
	StageSchedule = "schedule"
	// StageBind validates the binding and derives the transportation tasks
	// that drive architectural synthesis.
	StageBind = "bind"
	// StageArch synthesizes the connection graph with distributed channel
	// storage (Section 3.2).
	StageArch = "arch"
	// StagePhys compacts the planar connection graph into a physical layout
	// (Section 3.3).
	StagePhys = "phys"
	// StageVerify re-checks the finished result against the paper's
	// constraint system with the independent invariant checker
	// (internal/verify). Appended when Options.Verify is set.
	StageVerify = "verify"
)

// StageTiming records the wall-clock duration of one pipeline stage; the
// schedule/arch/phys entries correspond to the paper's t_s, t_r and t_p
// columns of Table 2.
type StageTiming struct {
	// Name is one of the Stage* constants.
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
}

// Binding summarizes what the Bind stage derived from the schedule: the
// transportation workload handed to architectural synthesis.
type Binding struct {
	// Transports counts device-to-device transportation tasks (direct and
	// stored).
	Transports int
	// Stored counts the tasks that cache their fluid in a channel segment —
	// the paper's distributed storage events.
	Stored int
}

// stageState carries intermediate products between pipeline stages.
type stageState struct {
	graph *seqgraph.Graph
	opts  Options
	res   *Result
}

// stage is one named step of the synthesis pipeline. Each stage reads and
// extends the shared state; the driver records its wall-clock time.
type stage struct {
	name string
	run  func(ctx context.Context, st *stageState) error
}

// pipeline returns the synthesis stages in execution order.
func pipeline(opts Options) []stage {
	stages := []stage{
		{name: StageSchedule, run: runScheduleStage},
		{name: StageBind, run: runBindStage},
		{name: StageArch, run: runArchStage},
		{name: StagePhys, run: runPhysStage},
	}
	if opts.Verify {
		stages = append(stages, stage{name: StageVerify, run: runVerifyStage})
	}
	return stages
}

// runScheduleStage schedules and binds the assay with the selected engine.
// The Auto engine races the exact ILP against the list scheduler (portfolio
// mode) at sizes where the ILP is worth attempting, instead of the former
// sequential try-ILP-then-fall-back pass.
func runScheduleStage(ctx context.Context, st *stageState) error {
	opts := st.opts
	g := st.graph
	beta := 0.0 // 0 means default (storage-aware) inside ILPOptions
	if opts.Mode == sched.TimeOnly {
		beta = -1 // disables the storage term
	}
	ilpOpts := sched.ILPOptions{
		Devices:   opts.Devices,
		Transport: opts.Transport,
		Beta:      beta,
		TimeLimit: opts.ILPTimeLimit,
		WarmStart: true,
	}
	switch {
	case opts.Engine == ExactILP:
		s, info, err := sched.ILPScheduleContext(ctx, g, ilpOpts)
		if err != nil {
			return err
		}
		st.res.Schedule, st.res.SchedInfo = s, info
	case opts.Engine == Auto && g.NumOps() <= sched.MaxExactOps:
		s, info, err := sched.PortfolioSchedule(ctx, g, ilpOpts)
		if err != nil {
			return err
		}
		st.res.Schedule, st.res.SchedInfo = s, info
	default:
		s, err := sched.ListScheduleContext(ctx, g, sched.ListOptions{
			Devices:   opts.Devices,
			Transport: opts.Transport,
			Mode:      opts.Mode,
		})
		if err != nil {
			return err
		}
		st.res.Schedule = s
	}
	return nil
}

// runBindStage re-checks the binding against the paper's constraints (Table
// 1) independently of the engine that produced it, and summarizes the
// transportation workload for the next stage.
func runBindStage(_ context.Context, st *stageState) error {
	if err := st.res.Schedule.Validate(); err != nil {
		return err
	}
	tasks := st.res.Schedule.Tasks()
	st.res.Binding.Transports = len(tasks)
	for _, t := range tasks {
		if t.Kind == sched.Stored {
			st.res.Binding.Stored++
		}
	}
	return nil
}

// runArchStage synthesizes the chip architecture on the connection grid.
func runArchStage(ctx context.Context, st *stageState) error {
	grid, err := arch.NewGrid(st.opts.GridRows, st.opts.GridCols)
	if err != nil {
		return err
	}
	st.res.Architecture, err = arch.SynthesizeContext(ctx, st.res.Schedule, grid, arch.Options{
		Strategy: st.opts.Placement,
		ModelIO:  st.opts.ModelIO,
	})
	return err
}

// runPhysStage compacts the architecture into the physical layout.
func runPhysStage(ctx context.Context, st *stageState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var err error
	st.res.Physical, err = phys.Compute(st.res.Architecture, st.opts.Phys)
	return err
}

// runVerifyStage re-derives the correctness of the finished result from
// first principles, independently of the engines that produced it.
func runVerifyStage(ctx context.Context, st *stageState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return st.res.Verify()
}

// SynthesizeContext runs the full staged flow — Schedule, Bind, Arch, Phys —
// on one assay, recording per-stage wall-clock in Result.Stages. Cancelling
// ctx aborts the pipeline promptly (every long-running stage observes the
// context down to the MILP branch-and-bound loop) with ctx.Err() wrapped in
// the stage error.
func SynthesizeContext(ctx context.Context, g *seqgraph.Graph, opts Options) (*Result, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	st := &stageState{graph: g, opts: opts, res: &Result{}}
	for _, sg := range pipeline(opts) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sg.run(ctx, st); err != nil {
			return nil, fmt.Errorf("core: %s stage: %w", sg.name, err)
		}
		d := time.Since(start)
		st.res.Stages = append(st.res.Stages, StageTiming{Name: sg.name, Duration: d})
		if sg.name == StageSchedule {
			st.res.SchedulingTime = d
		}
	}
	return st.res, nil
}
