package core

import (
	"context"
	"fmt"
	"time"

	"flowsyn/internal/arch"
	"flowsyn/internal/phys"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
	"flowsyn/internal/storage"
)

// Stage names, in pipeline order.
const (
	// StageSchedule produces the scheduling-and-binding result (Section 3.1).
	StageSchedule = "schedule"
	// StageBind validates the binding and derives the transportation tasks
	// that drive architectural synthesis.
	StageBind = "bind"
	// StageArch synthesizes the connection graph with distributed channel
	// storage (Section 3.2).
	StageArch = "arch"
	// StagePhys compacts the planar connection graph into a physical layout
	// (Section 3.3).
	StagePhys = "phys"
	// StageVerify re-checks the finished result against the paper's
	// constraint system with the independent invariant checker
	// (internal/verify). Appended when Options.Verify is set.
	StageVerify = "verify"
)

// StageTiming records the wall-clock duration of one pipeline stage; the
// schedule/arch/phys entries correspond to the paper's t_s, t_r and t_p
// columns of Table 2.
type StageTiming struct {
	// Name is one of the Stage* constants.
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
}

// Binding summarizes what the Bind stage derived from the schedule: the
// transportation workload handed to architectural synthesis.
type Binding struct {
	// Transports counts device-to-device transportation tasks (direct and
	// stored).
	Transports int
	// Stored counts the tasks that park their fluid somewhere — in a channel
	// segment or in the dedicated unit — the paper's storage events.
	Stored int
	// Unit counts the Stored tasks routed through the dedicated storage unit
	// (always zero under the distributed strategy).
	Unit int
}

// stageState carries intermediate products between pipeline stages.
type stageState struct {
	graph *seqgraph.Graph
	opts  Options
	res   *Result
	// pre, when non-nil, injects an already-solved schedule: the schedule
	// stage installs it instead of running an engine (the service layer's
	// schedule-cache path).
	pre *preSchedule
	// rec, when non-nil, marks an online re-synthesis: the recovery stages
	// (recover.go) read the prior result, fault and executed prefix from it.
	rec *recoverState
}

// preSchedule is a schedule solved by an earlier pipeline run, injected by
// SynthesizeWithSchedule.
type preSchedule struct {
	s    *sched.Schedule
	info *sched.ILPInfo
}

// stage is one named step of the synthesis pipeline. Each stage reads and
// extends the shared state; the driver records its wall-clock time.
type stage struct {
	name string
	run  func(ctx context.Context, st *stageState) error
}

// pipeline returns the synthesis stages in execution order.
func pipeline(opts Options) []stage {
	stages := []stage{
		{name: StageSchedule, run: runScheduleStage},
		{name: StageBind, run: runBindStage},
		{name: StageArch, run: runArchStage},
		{name: StagePhys, run: runPhysStage},
	}
	if opts.Verify {
		stages = append(stages, stage{name: StageVerify, run: runVerifyStage})
	}
	return stages
}

// runScheduleStage schedules and binds the assay with the selected engine.
// The Auto engine races the exact ILP against the list scheduler (portfolio
// mode) at sizes where the ILP is worth attempting, instead of the former
// sequential try-ILP-then-fall-back pass.
func runScheduleStage(ctx context.Context, st *stageState) error {
	if st.pre != nil {
		st.res.Schedule, st.res.SchedInfo = st.pre.s, st.pre.info
		return nil
	}
	opts := st.opts
	g := st.graph
	beta := 0.0 // 0 means default (storage-aware) inside ILPOptions
	if opts.Mode == sched.TimeOnly {
		beta = -1 // disables the storage term
	}
	model := storage.New(opts.Storage)
	ilpOpts := sched.ILPOptions{
		Devices:   opts.Devices,
		Transport: opts.Transport,
		Beta:      beta,
		TimeLimit: opts.ILPTimeLimit,
		WarmStart: true,
		Warm:      opts.Warm,
		Storage:   model,
	}
	ilpOpts.Progress = scheduleProgress(opts)
	switch {
	case opts.Engine == ExactILP:
		s, info, err := sched.ILPScheduleContext(ctx, g, ilpOpts)
		if err != nil {
			return err
		}
		st.res.Schedule, st.res.SchedInfo = s, info
	case opts.Engine == Auto && g.NumOps() <= sched.MaxExactOps:
		s, info, err := sched.PortfolioSchedule(ctx, g, ilpOpts)
		if err != nil {
			return err
		}
		st.res.Schedule, st.res.SchedInfo = s, info
	default:
		s, err := sched.ListScheduleContext(ctx, g, sched.ListOptions{
			Devices:   opts.Devices,
			Transport: opts.Transport,
			Mode:      opts.Mode,
			Storage:   model,
		})
		if err != nil {
			return err
		}
		// Incremental re-synthesis on the heuristic path: a prior schedule,
		// re-timed on the current graph, replaces the list result when it
		// scores better on the configured objective.
		if opts.Warm != nil {
			if ws, werr := sched.RetimeLikeWith(g, opts.Warm, opts.Devices, opts.Transport, model); werr == nil {
				if sched.ObjectiveScore(ws, opts.Mode) < sched.ObjectiveScore(s, opts.Mode) {
					s = ws
				}
			}
		}
		st.res.Schedule = s
	}
	reportScheduleOutcome(opts, st.res)
	return nil
}

// reportScheduleOutcome emits the closing progress event of a schedule stage:
// the solver summary when an exact engine ran, the kept incumbent otherwise.
func reportScheduleOutcome(opts Options, res *Result) {
	progress := opts.Progress
	if progress == nil {
		return
	}
	if info := res.SchedInfo; info != nil {
		// Final solver summary: nodes and the MIP gap the search ended
		// with, alongside the schedule actually kept.
		progress(ProgressEvent{
			Kind:      EventSolver,
			Stage:     StageSchedule,
			Makespan:  res.Schedule.Makespan,
			Objective: info.Objective,
			Nodes:     info.Solver.Nodes,
			Gap:       info.Solver.Gap,
		})
	} else {
		progress(ProgressEvent{
			Kind:     EventIncumbent,
			Stage:    StageSchedule,
			Makespan: res.Schedule.Makespan,
		})
	}
}

// scheduleProgress adapts the pipeline progress callback to the exact
// engine's incumbent stream.
func scheduleProgress(opts Options) func(sched.ProgressEvent) {
	progress := opts.Progress
	if progress == nil {
		return nil
	}
	return func(e sched.ProgressEvent) {
		progress(ProgressEvent{
			Kind:      EventIncumbent,
			Stage:     StageSchedule,
			Makespan:  e.Makespan,
			Objective: e.Objective,
			Nodes:     e.Nodes,
		})
	}
}

// runBindStage re-checks the binding against the paper's constraints (Table
// 1) independently of the engine that produced it, and summarizes the
// transportation workload for the next stage.
func runBindStage(_ context.Context, st *stageState) error {
	if err := st.res.Schedule.Validate(); err != nil {
		return err
	}
	tasks := st.res.Schedule.Tasks()
	st.res.Binding.Transports = len(tasks)
	for _, t := range tasks {
		if t.Kind == sched.Stored {
			st.res.Binding.Stored++
			if t.Unit {
				st.res.Binding.Unit++
			}
		}
	}
	return nil
}

// runArchStage synthesizes the chip architecture on the connection grid.
func runArchStage(ctx context.Context, st *stageState) error {
	grid, err := arch.NewGrid(st.opts.GridRows, st.opts.GridCols)
	if err != nil {
		return err
	}
	st.res.Architecture, err = arch.SynthesizeContext(ctx, st.res.Schedule, grid, arch.Options{
		Strategy: st.opts.Placement,
		ModelIO:  st.opts.ModelIO,
	})
	return err
}

// runPhysStage compacts the architecture into the physical layout.
func runPhysStage(ctx context.Context, st *stageState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var err error
	st.res.Physical, err = phys.Compute(st.res.Architecture, st.opts.Phys)
	return err
}

// runVerifyStage re-derives the correctness of the finished result from
// first principles, independently of the engines that produced it.
func runVerifyStage(ctx context.Context, st *stageState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return st.res.Verify()
}

// SynthesizeContext runs the full staged flow — Schedule, Bind, Arch, Phys —
// on one assay, recording per-stage wall-clock in Result.Stages. Cancelling
// ctx aborts the pipeline promptly (every long-running stage observes the
// context down to the MILP branch-and-bound loop) with ctx.Err() wrapped in
// the stage error.
func SynthesizeContext(ctx context.Context, g *seqgraph.Graph, opts Options) (*Result, error) {
	return synthesize(ctx, g, opts, nil)
}

// SynthesizeWithSchedule runs the pipeline with an already-solved schedule:
// the schedule stage installs s (and its solver diagnostics, which may be
// nil) instead of running an engine, and only bind, arch, phys and the
// optional verify stage execute. This is the service layer's schedule-cache
// path — a grid sweep over one assay re-solves the expensive MILP exactly
// once. s must be a valid schedule of g under opts' device and transport
// parameters; the bind stage re-validates it.
func SynthesizeWithSchedule(ctx context.Context, g *seqgraph.Graph, opts Options, s *sched.Schedule, info *sched.ILPInfo) (*Result, error) {
	return synthesize(ctx, g, opts, &preSchedule{s: s, info: info})
}

func synthesize(ctx context.Context, g *seqgraph.Graph, opts Options, pre *preSchedule) (*Result, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	st := &stageState{graph: g, opts: opts, res: &Result{Storage: opts.Storage}, pre: pre}
	return runPipeline(ctx, pipeline(opts), st)
}

// runPipeline drives a stage list over the shared state, recording per-stage
// wall-clock and emitting the stage progress events. It is shared between the
// ordinary synthesis flow and the online recovery flow.
func runPipeline(ctx context.Context, stages []stage, st *stageState) (*Result, error) {
	opts := st.opts
	for _, sg := range stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{Kind: EventStageStart, Stage: sg.name})
		}
		start := time.Now()
		if err := sg.run(ctx, st); err != nil {
			return nil, fmt.Errorf("core: %s stage: %w", sg.name, err)
		}
		d := time.Since(start)
		st.res.Stages = append(st.res.Stages, StageTiming{Name: sg.name, Duration: d})
		if sg.name == StageSchedule {
			st.res.SchedulingTime = d
		}
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{Kind: EventStageEnd, Stage: sg.name, Duration: d})
		}
	}
	return st.res, nil
}
