package core

import (
	"strings"
	"testing"
	"time"

	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

func TestSynthesizePCREndToEnd(t *testing.T) {
	b := assay.MustGet("PCR")
	res, err := Synthesize(b.Graph, Options{
		Devices:      b.Devices,
		Transport:    b.Transport,
		GridRows:     b.GridRows,
		GridCols:     b.GridCols,
		ModelIO:      b.ModelIO,
		ILPTimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Error(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Error(err)
	}
	if res.Physical.Compressed.Area() <= 0 {
		t.Error("empty physical design")
	}
	// PCR is small enough for the Auto engine to use the ILP.
	if res.SchedInfo == nil {
		t.Error("expected ILP diagnostics for PCR under Auto engine")
	}
	if !strings.Contains(res.Summary(), "tE=") {
		t.Errorf("Summary = %q", res.Summary())
	}
}

func TestSynthesizeAllBenchmarksHeuristic(t *testing.T) {
	for _, name := range assay.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := assay.MustGet(name)
			res, err := Synthesize(b.Graph, Options{
				Devices:   b.Devices,
				Transport: b.Transport,
				GridRows:  b.GridRows,
				GridCols:  b.GridCols,
				ModelIO:   b.ModelIO,
				Engine:    Heuristic,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SchedInfo != nil {
				t.Error("heuristic engine should not report ILP info")
			}
			if err := res.Architecture.Validate(); err != nil {
				t.Error(err)
			}
			// Simulator and dedicated baseline must work off the result.
			if snap := res.Simulator().At(0); snap == nil {
				t.Error("nil snapshot")
			}
			cmp, err := res.CompareDedicated()
			if err != nil {
				t.Fatal(err)
			}
			if cmp.ExecRatio > 1.0001 {
				t.Errorf("distributed slower than dedicated: %v", cmp.ExecRatio)
			}
		})
	}
}

func TestSynthesizeErrors(t *testing.T) {
	b := assay.MustGet("PCR")
	if _, err := Synthesize(b.Graph, Options{Devices: 0}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := Synthesize(b.Graph, Options{Devices: 1, Transport: -5}); err == nil {
		t.Error("negative transport accepted")
	}
	if _, err := Synthesize(b.Graph, Options{Devices: 1, GridRows: 1, GridCols: 1}); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{Auto: "auto", Heuristic: "heuristic", ExactILP: "exact-ilp"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestTimeOnlyMode(t *testing.T) {
	b := assay.MustGet("RA30")
	res, err := Synthesize(b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
		Mode:      sched.TimeOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Error(err)
	}
}
