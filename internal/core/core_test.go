package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
	"flowsyn/internal/verify"
)

func TestSynthesizePCREndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("exact ILP on PCR is slow in -short mode")
	}
	b := assay.MustGet("PCR")
	res, err := Synthesize(b.Graph, Options{
		Devices:      b.Devices,
		Transport:    b.Transport,
		GridRows:     b.GridRows,
		GridCols:     b.GridCols,
		ModelIO:      b.ModelIO,
		ILPTimeLimit: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Error(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Error(err)
	}
	if res.Physical.Compressed.Area() <= 0 {
		t.Error("empty physical design")
	}
	// PCR is small enough for the Auto engine to use the ILP.
	if res.SchedInfo == nil {
		t.Error("expected ILP diagnostics for PCR under Auto engine")
	}
	if !strings.Contains(res.Summary(), "tE=") {
		t.Errorf("Summary = %q", res.Summary())
	}
}

func TestSynthesizeAllBenchmarksHeuristic(t *testing.T) {
	for _, name := range assay.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := assay.MustGet(name)
			res, err := Synthesize(b.Graph, Options{
				Devices:   b.Devices,
				Transport: b.Transport,
				GridRows:  b.GridRows,
				GridCols:  b.GridCols,
				ModelIO:   b.ModelIO,
				Engine:    Heuristic,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SchedInfo != nil {
				t.Error("heuristic engine should not report ILP info")
			}
			if err := res.Architecture.Validate(); err != nil {
				t.Error(err)
			}
			// Simulator and dedicated baseline must work off the result.
			if snap := res.Simulator().At(0); snap == nil {
				t.Error("nil snapshot")
			}
			cmp, err := res.CompareDedicated()
			if err != nil {
				t.Fatal(err)
			}
			if cmp.ExecRatio > 1.0001 {
				t.Errorf("distributed slower than dedicated: %v", cmp.ExecRatio)
			}
		})
	}
}

func TestSynthesizeErrors(t *testing.T) {
	b := assay.MustGet("PCR")
	if _, err := Synthesize(b.Graph, Options{Devices: 0}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := Synthesize(b.Graph, Options{Devices: 1, Transport: -5}); err == nil {
		t.Error("negative transport accepted")
	}
	if _, err := Synthesize(b.Graph, Options{Devices: 1, GridRows: 1, GridCols: 1}); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{Auto: "auto", Heuristic: "heuristic", ExactILP: "exact-ilp"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestStageTimingsRecorded(t *testing.T) {
	b := assay.MustGet("RA30")
	res, err := Synthesize(b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageSchedule, StageBind, StageArch, StagePhys}
	if len(res.Stages) != len(want) {
		t.Fatalf("got %d stage timings, want %d: %+v", len(res.Stages), len(want), res.Stages)
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
		if res.Stages[i].Duration < 0 {
			t.Errorf("stage %q has negative duration", name)
		}
	}
	if res.SchedulingTime != res.StageDuration(StageSchedule) {
		t.Errorf("SchedulingTime %v != schedule stage duration %v",
			res.SchedulingTime, res.StageDuration(StageSchedule))
	}
	if res.Binding.Transports == 0 {
		t.Error("bind stage recorded no transports for RA30")
	}
	if res.Binding.Stored != res.Schedule.StoreCount() {
		t.Errorf("bind stage counted %d stored tasks, schedule reports %d",
			res.Binding.Stored, res.Schedule.StoreCount())
	}
}

func TestVerifyStageRunsAndRecordsTiming(t *testing.T) {
	b := assay.MustGet("RA30")
	res, err := Synthesize(b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verify stage ran but result not marked Verified")
	}
	want := []string{StageSchedule, StageBind, StageArch, StagePhys, StageVerify}
	if len(res.Stages) != len(want) || res.Stages[len(res.Stages)-1].Name != StageVerify {
		t.Errorf("stages = %+v, want trailing %q", res.Stages, StageVerify)
	}
}

func TestVerifyCatchesBindingMismatch(t *testing.T) {
	b := assay.MustGet("RA30")
	res, err := Synthesize(b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Error("result marked Verified without a verify run")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	if !res.Verified {
		t.Error("Verify succeeded but result not marked Verified")
	}
	res.Binding.Stored++
	var verr *verify.Error
	if err := res.Verify(); !errors.As(err, &verr) {
		t.Fatalf("binding mismatch not caught: %v", err)
	}
}

func TestSynthesizeContextPreCancelled(t *testing.T) {
	b := assay.MustGet("RA30")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		Engine:    Heuristic,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTimeOnlyMode(t *testing.T) {
	b := assay.MustGet("RA30")
	res, err := Synthesize(b.Graph, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
		Mode:      sched.TimeOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Error(err)
	}
}
