// Package core wires the paper's complete synthesis flow together:
// storage-aware scheduling and binding (internal/sched), architectural
// synthesis with distributed channel storage (internal/arch), iterative
// physical design (internal/phys), plus the execution simulator
// (internal/sim) and the dedicated-storage baseline (internal/dedicated)
// used by the evaluation.
//
// It is the engine behind the public flowsyn API, the cmd/ tools, and the
// benchmark harness that regenerates the paper's Table 2 and Figs. 8–11.
package core

import (
	"context"
	"fmt"
	"time"

	"flowsyn/internal/arch"
	"flowsyn/internal/dedicated"
	"flowsyn/internal/phys"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
	"flowsyn/internal/sim"
	"flowsyn/internal/storage"
	"flowsyn/internal/verify"
)

// Engine selects the scheduling engine.
type Engine int

const (
	// Auto uses the exact ILP for small assays (≤ sched.MaxExactOps
	// operations) and the storage-aware list scheduler otherwise, matching
	// the paper's best-effort behaviour under its solver time limit.
	Auto Engine = iota
	// Heuristic always uses the list scheduler.
	Heuristic
	// ExactILP always attempts the ILP (subject to its internal size cap).
	ExactILP
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Heuristic:
		return "heuristic"
	case ExactILP:
		return "exact-ilp"
	default:
		return "auto"
	}
}

// Options configures a full synthesis run.
type Options struct {
	// Devices is the maximum device count (paper input). Must be >= 1.
	Devices int
	// Transport is u_c in seconds; defaults to 10.
	Transport int
	// GridRows/GridCols set the connection grid G; default 4×4.
	GridRows, GridCols int
	// Mode selects the scheduling objective (storage-aware by default).
	Mode sched.Mode
	// Storage selects the storage strategy both scheduling engines plan
	// under: distributed channel storage (the zero value — the paper's
	// method), a dedicated storage unit, or a hybrid bounded channel cache in
	// front of the unit. The strategy also drives architecture (unit
	// placement and port routing) and the verify stage's strategy invariants.
	Storage storage.Config
	// Engine selects the scheduling engine.
	Engine Engine
	// ILPTimeLimit caps the exact scheduler (zero: 30 s).
	ILPTimeLimit time.Duration
	// Placement selects the device-placement strategy.
	Placement arch.PlacementStrategy
	// ModelIO routes reagent loading and product unloading through chip
	// boundary ports during architectural synthesis.
	ModelIO bool
	// Verify appends the verify stage to the pipeline: after physical design,
	// the result is re-checked from first principles by the independent
	// invariant checker (internal/verify), including the simulator
	// cross-check. A violation fails the synthesis with a *verify.Error.
	Verify bool
	// Phys sets the physical design rules.
	Phys phys.Options
	// Warm, if non-nil, is a prior schedule of this (possibly edited) assay.
	// The exact engines feed it to the MILP as an additional warm-start
	// candidate after re-timing (sched.RetimeLike); the heuristic engine
	// races the re-timed schedule against the list scheduler and keeps the
	// better result. This is the incremental re-synthesis hook.
	Warm *sched.Schedule
	// Progress, if non-nil, receives pipeline progress events: stage
	// enter/exit and every improving incumbent of an exact solve. It is
	// called synchronously from the pipeline and from MILP solver workers,
	// so implementations must be fast and non-blocking.
	Progress func(ProgressEvent)
}

// Progress event kinds.
const (
	// EventStageStart marks a pipeline stage beginning.
	EventStageStart = "stage-start"
	// EventStageEnd marks a pipeline stage finishing, with its duration.
	EventStageEnd = "stage-end"
	// EventIncumbent reports an improving incumbent of the exact schedule
	// solve: its model makespan, objective and node count.
	EventIncumbent = "incumbent"
	// EventSolver summarizes a finished exact solve: final makespan,
	// objective, node count and MIP gap.
	EventSolver = "solver"
)

// ProgressEvent is one observation of a running synthesis pipeline.
type ProgressEvent struct {
	// Kind is one of the Event* constants.
	Kind string
	// Stage names the pipeline stage the event belongs to.
	Stage string
	// Duration is the stage wall-clock time (EventStageEnd only).
	Duration time.Duration
	// Makespan, Objective and Nodes describe the incumbent
	// (EventIncumbent) or the finished solve (EventSolver).
	Makespan  int
	Objective float64
	Nodes     int
	// Gap is the relative MIP gap at termination (EventSolver only): 0 for
	// a proven optimum, -1 when no dual bound survived.
	Gap float64
}

// ServiceMetrics carries the per-job service-mode diagnostics of a result
// produced through a solver session (internal/service): how long the job
// queued, whether it was served from the content-addressed caches, and how
// much of a prior schedule an incremental re-synthesis reused. Nil on
// results synthesized outside a session.
type ServiceMetrics struct {
	// QueueWait is the time between job submission and a worker picking the
	// job up; Runtime is the job's wall-clock time inside its worker
	// (near zero on a cache hit).
	QueueWait, Runtime time.Duration
	// CacheHit reports that the complete result came from the full-result
	// cache (no stage ran).
	CacheHit bool
	// ScheduleCacheHit reports that the schedule stage was served from the
	// schedule cache (only bind/arch/phys ran).
	ScheduleCacheHit bool
	// Coalesced reports that the job waited on an identical in-flight
	// solve instead of starting its own (counted as a cache hit).
	Coalesced bool
	// StoreHit reports that the schedule was loaded from the fleet's
	// persistent store (another replica's — or a previous life's — solve).
	StoreHit bool
	// LeaseWait is the time spent waiting on another replica's cross-fleet
	// single-flight lease before this job could be served.
	LeaseWait time.Duration
	// Events counts the progress events emitted for the job; Dropped counts
	// events discarded because the subscriber fell behind.
	Events, Dropped int
	// ReusedOps and EditedOps summarize an incremental re-synthesis: how
	// many operations of the edited assay kept a prior binding, and how
	// many were added, removed or changed. Both zero outside Resynthesize.
	ReusedOps, EditedOps int
}

func (o *Options) defaults() error {
	if o.Devices < 1 {
		return fmt.Errorf("core: need at least one device, got %d", o.Devices)
	}
	if o.Transport == 0 {
		o.Transport = 10
	}
	if o.Transport < 1 {
		return fmt.Errorf("core: transport time must be >= 1, got %d", o.Transport)
	}
	if o.GridRows == 0 {
		o.GridRows = 4
	}
	if o.GridCols == 0 {
		o.GridCols = 4
	}
	if o.GridRows < 2 || o.GridCols < 2 {
		// Reject degenerate grids up front, before the expensive schedule
		// stage runs (the arch stage would reject them anyway).
		return fmt.Errorf("core: connection grid must be at least 2x2, got %dx%d", o.GridRows, o.GridCols)
	}
	if err := o.Storage.Validate(); err != nil {
		return err
	}
	return nil
}

// Normalized returns the options with the documented defaults applied — the
// form the pipeline actually runs, and the form the service layer hashes into
// its cache keys (so an explicit Transport of 10 and the default 10 key
// identically). It errors exactly when SynthesizeContext would reject the
// options up front.
func (o Options) Normalized() (Options, error) {
	if err := o.defaults(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Result is the complete output of the synthesis flow for one assay.
type Result struct {
	// Schedule is the scheduling-and-binding result (Section 3.1).
	Schedule *sched.Schedule
	// SchedInfo carries ILP diagnostics when the exact engine ran (nil for
	// the heuristic engine).
	SchedInfo *sched.ILPInfo
	// Binding summarizes the transportation workload derived by the Bind
	// stage.
	Binding Binding
	// Architecture is the synthesized connection graph (Section 3.2).
	Architecture *arch.Result
	// Physical is the compacted layout (Section 3.3).
	Physical *phys.Design
	// Stages records per-stage wall-clock time in pipeline order.
	Stages []StageTiming
	// SchedulingTime is the wall-clock scheduling time (t_s in Table 2),
	// equal to the StageSchedule entry of Stages.
	SchedulingTime time.Duration
	// Storage records the storage strategy the result was synthesized under
	// (the zero value is distributed channel storage).
	Storage storage.Config
	// Verified reports that the verify stage ran and found no violation.
	Verified bool
	// Service carries per-job queue/cache/progress metrics when the result
	// was produced through a solver session; nil otherwise.
	Service *ServiceMetrics
	// Recovery summarizes the fault and splice when the result came from an
	// online re-synthesis (Recover); nil for ordinary syntheses.
	Recovery *Recovery
}

// StageDuration returns the recorded wall-clock of the named stage (zero when
// the stage did not run).
func (r *Result) StageDuration(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Duration
		}
	}
	return 0
}

// Synthesize runs the full flow on one assay.
func Synthesize(g *seqgraph.Graph, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), g, opts)
}

// Simulator returns an execution simulator for the synthesized chip.
func (r *Result) Simulator() *sim.Simulator {
	return sim.New(r.Architecture, r.Schedule)
}

// Verify re-checks the result from first principles with the independent
// invariant checker (internal/verify): scheduling constraints, route cover
// and exclusivity, storage-strategy invariants (port exclusivity, cache
// capacity, eviction legality under the recorded strategy), metric
// recomputation, and the simulator cross-check. It returns a *verify.Error
// describing every violation, or nil; on success the result is marked
// Verified.
func (r *Result) Verify() error {
	r.Verified = false
	rep, err := verify.CheckAllStrategy(r.Schedule, r.Architecture, storage.New(r.Storage))
	if err != nil {
		return err
	}
	// The Bind stage's summary must agree with the checker's recomputed
	// transportation workload.
	var extra []verify.Violation
	if r.Binding.Transports != rep.Transports {
		extra = append(extra, verify.Violation{
			Invariant: verify.InvMetrics,
			Detail: fmt.Sprintf("bind stage reported %d transports, checker recomputed %d",
				r.Binding.Transports, rep.Transports),
		})
	}
	if r.Binding.Stored != rep.Stored {
		extra = append(extra, verify.Violation{
			Invariant: verify.InvMetrics,
			Detail: fmt.Sprintf("bind stage reported %d stored tasks, checker recomputed %d",
				r.Binding.Stored, rep.Stored),
		})
	}
	if len(extra) > 0 {
		return &verify.Error{Violations: extra}
	}
	r.Verified = true
	return nil
}

// CompareDedicated runs the Fig. 10 baseline: the same schedule executed
// with a dedicated storage unit instead of distributed channel storage.
func (r *Result) CompareDedicated() (*dedicated.Comparison, error) {
	return dedicated.Compare(r.Schedule, r.Architecture.NumValves)
}

// Summary renders the headline numbers in Table 2's column order, followed
// by the MILP solver diagnostics when the exact engine ran.
func (r *Result) Summary() string {
	s := fmt.Sprintf(
		"tE=%d s | grid %s | ne=%d nv=%d (edge ratio %.2f, valve ratio %.2f) | dr=%s de=%s dp=%s",
		r.Schedule.Makespan,
		r.Architecture.Grid,
		r.Architecture.NumEdges,
		r.Architecture.NumValves,
		r.Architecture.EdgeRatio,
		r.Architecture.ValveRatio,
		r.Physical.AfterSynthesis,
		r.Physical.AfterDevices,
		r.Physical.Compressed,
	)
	// The service fragment (queue wait, cache provenance) is deliberately
	// excluded here: Summary is the deterministic paper-table line, byte
	// identical for one result however it was produced or served.
	if sv := r.solverSummary(false); sv != "" {
		s += " | " + sv
	}
	return s
}

// SolverSummary renders the exact engine's solver diagnostics in one line,
// followed by the per-job service metrics (queue wait, cache provenance)
// when the result came through a solver session. It returns "" when the
// heuristic engine scheduled (no ILP ran) outside a session.
func (r *Result) SolverSummary() string { return r.solverSummary(true) }

func (r *Result) solverSummary(withService bool) string {
	info := r.SchedInfo
	if info == nil {
		if withService && r.Service != nil {
			return r.Service.summary()
		}
		return ""
	}
	s := fmt.Sprintf("ilp %s: %d nodes, %d pivots, warm %.0f%%",
		info.Status, info.Solver.Nodes, info.Solver.SimplexIters,
		100*info.Solver.WarmStartRate())
	if g := info.Solver.Gap; g >= 0 {
		s += fmt.Sprintf(", gap %.2f%%", 100*g)
	}
	if p := info.Solver.Presolve; p.FixedCols > 0 || p.RemovedRows > 0 {
		s += fmt.Sprintf(", presolve -%dc/-%dr", p.FixedCols, p.RemovedRows)
	}
	if f := info.Solver.Factor; f.Kernel != "" {
		s += fmt.Sprintf(", kernel %s (%d refactor, %d updates", f.Kernel, f.Refactorizations, f.Updates)
		if f.UpdatesRejected > 0 {
			s += fmt.Sprintf(", %d rejected", f.UpdatesRejected)
		}
		if f.FillRatio > 0 {
			s += fmt.Sprintf(", fill %.2f", f.FillRatio)
		}
		s += ")"
	}
	if info.Solver.PropagationTightenings > 0 || info.Solver.PropagationPrunes > 0 {
		s += fmt.Sprintf(", prop %dt/%dp",
			info.Solver.PropagationTightenings, info.Solver.PropagationPrunes)
	}
	if c := info.Solver.Cuts; c.Gomory+c.Cover+c.Clique > 0 {
		s += fmt.Sprintf(", cuts %dg/%dc/%dq (%d kept", c.Gomory, c.Cover, c.Clique, c.Applied)
		if c.LiftedCover > 0 {
			s += fmt.Sprintf(", %d lifted", c.LiftedCover)
		}
		if c.AgedOut > 0 {
			s += fmt.Sprintf(", %d aged", c.AgedOut)
		}
		s += ")"
	}
	if w := info.Solver.SeparationWall; w > 0 {
		s += fmt.Sprintf(", sep %s", w.Round(time.Microsecond))
	}
	if info.Solver.PseudoCostInits > 0 {
		s += fmt.Sprintf(", pc-init %d", info.Solver.PseudoCostInits)
	}
	if info.Solver.ReducedCostFixings > 0 {
		s += fmt.Sprintf(", rc-fix %d", info.Solver.ReducedCostFixings)
	}
	if info.Solver.HeuristicIncumbents > 0 {
		s += fmt.Sprintf(", heur %d", info.Solver.HeuristicIncumbents)
	}
	if info.Solver.LocalBranchingIncumbents > 0 {
		s += fmt.Sprintf(", local-branch %d", info.Solver.LocalBranchingIncumbents)
	}
	if tot := info.Solver.IncrementalPivots + info.Solver.FullPricingPivots; tot > 0 {
		s += fmt.Sprintf(", incr-price %.0f%%",
			100*float64(info.Solver.IncrementalPivots)/float64(tot))
	}
	if info.Winner != "" {
		s += ", winner " + info.Winner
	}
	if m := r.Service; withService && m != nil {
		s += ", " + m.summary()
	}
	return s
}

// summary renders the service-mode metrics in one fragment of the solver
// line, e.g. "svc queue 1.2ms cache schedule-hit".
func (m *ServiceMetrics) summary() string {
	cache := "miss"
	switch {
	case m.CacheHit && m.Coalesced:
		cache = "hit (coalesced)"
	case m.CacheHit:
		cache = "hit"
	case m.ScheduleCacheHit:
		cache = "schedule-hit"
	case m.StoreHit:
		cache = "store-hit"
	}
	s := fmt.Sprintf("svc queue %s cache %s", m.QueueWait.Round(time.Microsecond), cache)
	if m.LeaseWait > 0 {
		s += fmt.Sprintf(" lease-wait %s", m.LeaseWait.Round(time.Microsecond))
	}
	if m.ReusedOps > 0 || m.EditedOps > 0 {
		s += fmt.Sprintf(" resynth %d reused/%d edited", m.ReusedOps, m.EditedOps)
	}
	return s
}
