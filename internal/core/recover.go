package core

import (
	"context"
	"fmt"

	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
	"flowsyn/internal/sim"
	"flowsyn/internal/storage"
	"flowsyn/internal/verify"
)

// Recovery summarizes an online re-synthesis: the injected fault, how much of
// the interrupted execution survived the splice, and what the recovery cost
// in makespan.
type Recovery struct {
	// Fault is the injected fault the recovery worked around.
	Fault sim.Fault
	// PreservedOps counts operations of the executed prefix carried over
	// verbatim (same device, same window) — zero re-executed work.
	PreservedOps int
	// PreservedRoutes counts the executed internal transport routes carried
	// over verbatim into the recovered architecture.
	PreservedRoutes int
	// ReroutedTransports counts the transportation routes planned fresh
	// around the fault (suffix transports plus the wholesale re-planned I/O
	// traffic).
	ReroutedTransports int
	// OldMakespan and NewMakespan are the assay completion times of the
	// faulted plan and the recovered plan; MakespanDelta is their difference
	// (>= 0 in practice: the recovery can only constrain the solution space).
	OldMakespan, NewMakespan, MakespanDelta int
}

// String renders the recovery metrics in one line.
func (r *Recovery) String() string {
	return fmt.Sprintf("recover %s: %d ops preserved, %d routes preserved, %d transports re-planned, makespan %d -> %d (%+d)",
		r.Fault, r.PreservedOps, r.PreservedRoutes, r.ReroutedTransports,
		r.OldMakespan, r.NewMakespan, r.MakespanDelta)
}

// recoverState carries the recovery context between the pipeline stages: the
// faulted result being recovered, the fault, the frozen execution prefix and
// the scheduling pin derived from it.
type recoverState struct {
	prior  *Result
	fault  sim.Fault
	prefix *sim.Prefix
	pin    *sched.Pin
}

// Recover re-synthesizes an interrupted execution around a fault injected at
// fault.Time. See RecoverContext.
func Recover(opts Options, prior *Result, fault sim.Fault) (*Result, error) {
	return RecoverContext(context.Background(), opts, prior, fault)
}

// RecoverContext performs fault-tolerant online re-synthesis: it freezes
// everything prior's execution had completed or in flight when the fault hit
// (sim.ExecutionPrefix), pins that prefix — assignments, departure slots and
// the internal routes that fed it — and re-synthesizes only the suffix on the
// masked chip:
//
//   - sim.FaultDevice bans the failed chamber from all re-planned operations
//     (its ports stay usable, so fluids already inside still transport out);
//   - sim.FaultChannel bans the failed segment from all re-planned routing
//     and storage;
//   - sim.FaultStorage bans the degraded segment from storage candidacy only.
//
// The chip itself is immutable mid-run: device count, transport time, grid,
// placement and the I/O model are taken from prior, whatever opts says; opts
// contributes the engine choice, objective mode, time limit, physical-design
// rules and the Verify/Progress hooks. The prior schedule warm-starts the
// suffix solve. With opts.Verify set, the spliced plan is replayed end to end
// by verify.CheckRecovery, which fails the recovery on any re-executed prefix
// work, pre-fault suffix start, or fault-mask violation.
//
// The returned result is a complete synthesis of the same assay whose
// Recovery field carries the splice metrics.
func RecoverContext(ctx context.Context, opts Options, prior *Result, fault sim.Fault) (*Result, error) {
	if prior == nil || prior.Schedule == nil || prior.Architecture == nil {
		return nil, fmt.Errorf("core: recovery needs a prior result with a schedule and an architecture")
	}
	s0, a0 := prior.Schedule, prior.Architecture
	// Pin the chip parameters to the interrupted execution.
	opts.Devices = s0.Devices
	opts.Transport = s0.Transport
	opts.GridRows, opts.GridCols = a0.Grid.Rows, a0.Grid.Cols
	opts.ModelIO = a0.Ports > 0
	// The storage strategy is part of the chip too: a dedicated unit (or its
	// absence) is physical, so the recovery keeps the strategy the prior
	// result was synthesized under.
	opts.Storage = prior.Storage
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := fault.Validate(s0, a0); err != nil {
		return nil, err
	}

	prefix := sim.New(a0, s0).ExecutionPrefix(fault.Time)
	pin := &sched.Pin{
		Time:          fault.Time,
		Assignments:   prefix.Assignments,
		DepartOffsets: prefix.DepartOffsets,
	}
	// Unit port grants of executed edges are frozen with the prefix: their
	// store and fetch completed before the fault, so the re-planned schedule
	// reproduces them verbatim and keeps their port time reserved.
	for e, w := range s0.UnitWindows {
		if prefix.Pinned(e.Child) {
			if pin.UnitWindows == nil {
				pin.UnitWindows = make(map[seqgraph.Edge]sched.UnitWindow)
			}
			pin.UnitWindows[e] = w
		}
	}
	if fault.Kind == sim.FaultDevice {
		pin.Forbidden = map[int]bool{fault.Device: true}
	}
	if err := pin.Validate(s0.Graph, opts.Devices); err != nil {
		return nil, err
	}

	st := &stageState{
		graph: s0.Graph,
		opts:  opts,
		res:   &Result{Storage: opts.Storage},
		rec:   &recoverState{prior: prior, fault: fault, prefix: prefix, pin: pin},
	}
	res, err := runPipeline(ctx, recoverPipeline(opts), st)
	if err != nil {
		return nil, err
	}
	res.Recovery = &Recovery{
		Fault:           fault,
		PreservedOps:    len(prefix.Assignments),
		PreservedRoutes: len(prefix.Routes),
		// Preserved routes are re-installed verbatim in the recovered
		// architecture; everything beyond them was planned fresh.
		ReroutedTransports: len(res.Architecture.Routes) - len(prefix.Routes),
		OldMakespan:        s0.Makespan,
		NewMakespan:        res.Schedule.Makespan,
		MakespanDelta:      res.Schedule.Makespan - s0.Makespan,
	}
	return res, nil
}

// recoverPipeline returns the online-recovery stages: the schedule and arch
// stages are replaced by prefix-pinning variants, and the verify stage (when
// requested) replays the faulted execution end to end instead of only
// checking the recovered plan in isolation.
func recoverPipeline(opts Options) []stage {
	stages := []stage{
		{name: StageSchedule, run: runRecoverScheduleStage},
		{name: StageBind, run: runBindStage},
		{name: StageArch, run: runRecoverArchStage},
		{name: StagePhys, run: runPhysStage},
	}
	if opts.Verify {
		stages = append(stages, stage{name: StageVerify, run: runRecoverVerifyStage})
	}
	return stages
}

// runRecoverScheduleStage re-schedules the assay suffix under the prefix pin.
// The exact engines receive the pin directly (pinned operations become
// degenerate boxes, suffix starts are floored at the fault instant) with the
// prior schedule as warm start; the heuristic engine races the pinned list
// scheduler against the pinned re-timing of the prior schedule.
func runRecoverScheduleStage(ctx context.Context, st *stageState) error {
	opts, g, rc := st.opts, st.graph, st.rec
	beta := 0.0 // 0 means default (storage-aware) inside ILPOptions
	if opts.Mode == sched.TimeOnly {
		beta = -1 // disables the storage term
	}
	model := storage.New(opts.Storage)
	exact := opts.Engine == ExactILP ||
		(opts.Engine == Auto && g.NumOps() <= sched.MaxExactOps)
	if exact {
		s, info, err := sched.ILPScheduleContext(ctx, g, sched.ILPOptions{
			Devices:   opts.Devices,
			Transport: opts.Transport,
			Beta:      beta,
			TimeLimit: opts.ILPTimeLimit,
			WarmStart: true,
			Warm:      rc.prior.Schedule,
			Pin:       rc.pin,
			Storage:   model,
			Progress:  scheduleProgress(opts),
		})
		if err != nil {
			return err
		}
		st.res.Schedule, st.res.SchedInfo = s, info
	} else {
		s, err := sched.ListScheduleContext(ctx, g, sched.ListOptions{
			Devices:   opts.Devices,
			Transport: opts.Transport,
			Mode:      opts.Mode,
			Pin:       rc.pin,
			Storage:   model,
		})
		if err != nil {
			return err
		}
		// The prior schedule, re-timed around the pin, replaces the list
		// result when it scores better on the configured objective — the
		// suffix usually resembles what was already planned.
		if ws, werr := sched.RetimePinnedWith(g, rc.prior.Schedule, rc.pin, opts.Devices, opts.Transport, model); werr == nil {
			if sched.ObjectiveScore(ws, opts.Mode) < sched.ObjectiveScore(s, opts.Mode) {
				s = ws
			}
		}
		st.res.Schedule = s
	}
	reportScheduleOutcome(opts, st.res)
	return nil
}

// runRecoverArchStage re-routes the transportation workload on the prior
// chip: placement is fixed to the prior device positions, the executed
// internal routes are re-installed verbatim (shielded from rip-up), and the
// failed resource is masked from everything planned fresh.
func runRecoverArchStage(ctx context.Context, st *stageState) error {
	rc := st.rec
	a0 := rc.prior.Architecture
	archOpts := arch.Options{
		Strategy:       st.opts.Placement,
		ModelIO:        st.opts.ModelIO,
		FixedPlacement: append([]arch.NodeID(nil), a0.DevicePos...),
		PinnedRoutes:   rc.prefix.Routes,
	}
	switch rc.fault.Kind {
	case sim.FaultChannel:
		archOpts.ForbiddenEdges = []arch.EdgeID{rc.fault.Edge}
	case sim.FaultStorage:
		archOpts.ForbiddenStorage = []arch.EdgeID{rc.fault.Edge}
	}
	var err error
	st.res.Architecture, err = arch.SynthesizeContext(ctx, st.res.Schedule, a0.Grid, archOpts)
	return err
}

// runRecoverVerifyStage replays the faulted execution end to end: the full
// invariant suite on the recovered result plus the splice-point guarantees
// (prefix preserved verbatim, suffix floored at the fault, masks honored,
// devices unmoved).
func runRecoverVerifyStage(ctx context.Context, st *stageState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rc := st.rec
	if _, err := verify.CheckRecovery(rc.prior.Schedule, rc.prior.Architecture,
		st.res.Schedule, st.res.Architecture, rc.fault); err != nil {
		return err
	}
	st.res.Verified = true
	return nil
}
