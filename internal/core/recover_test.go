package core

import (
	"strings"
	"testing"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/sim"
)

// recoverFixture synthesizes the named benchmark with the heuristic engine
// and returns the result to inject faults into.
func recoverFixture(t *testing.T, name string) (*Result, Options) {
	t.Helper()
	b := assay.MustGet(name)
	opts := Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    Heuristic,
	}
	res, err := Synthesize(b.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, opts
}

func TestRecoverDeviceFault(t *testing.T) {
	prior, opts := recoverFixture(t, "CPA")
	opts.Verify = true
	fault := sim.Fault{Kind: sim.FaultDevice, Time: prior.Schedule.Makespan / 2, Device: 0}
	rec, err := Recover(opts, prior, fault)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Verified {
		t.Error("recovered result not marked verified")
	}
	r := rec.Recovery
	if r == nil {
		t.Fatal("no recovery metrics")
	}
	if r.Fault != fault {
		t.Errorf("Recovery.Fault = %v, want %v", r.Fault, fault)
	}
	if r.OldMakespan != prior.Schedule.Makespan || r.NewMakespan != rec.Schedule.Makespan {
		t.Errorf("makespans %d/%d, want %d/%d",
			r.OldMakespan, r.NewMakespan, prior.Schedule.Makespan, rec.Schedule.Makespan)
	}
	if r.MakespanDelta != r.NewMakespan-r.OldMakespan {
		t.Errorf("MakespanDelta = %d", r.MakespanDelta)
	}
	// Mid-execution fault on a busy benchmark: some work must have completed.
	if r.PreservedOps == 0 {
		t.Error("expected a non-empty executed prefix")
	}
	// Zero re-executed prefix work, re-checked directly on top of the
	// verify stage.
	for _, a := range prior.Schedule.Assignments {
		if a.Start < fault.Time && rec.Schedule.Assignments[a.Op] != a {
			t.Errorf("executed op %d re-planned", a.Op)
		}
	}
	if !strings.Contains(r.String(), "ops preserved") {
		t.Errorf("Recovery.String() = %q", r.String())
	}
}

func TestRecoverChannelAndStorageFaults(t *testing.T) {
	prior, opts := recoverFixture(t, "PCR")
	opts.Verify = true
	// Fail a segment a routed path actually uses, so the mask has teeth.
	var edge arch.EdgeID
	found := false
	for _, rt := range prior.Architecture.Routes {
		for _, e := range rt.Edges() {
			edge, found = e, true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no routed edges in the prior architecture")
	}
	for _, kind := range []sim.FaultKind{sim.FaultChannel, sim.FaultStorage} {
		fault := sim.Fault{Kind: kind, Time: prior.Schedule.Makespan / 3, Edge: edge}
		rec, err := Recover(opts, prior, fault)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !rec.Verified {
			t.Errorf("%v: recovered result not verified", kind)
		}
	}
}

// TestRecoverExactEngine drives the recovery splice through the exact MILP:
// the pinned prefix becomes fixed variables and the prior plan warm-starts
// the solve, so the spliced schedule must verify just like the heuristic one.
func TestRecoverExactEngine(t *testing.T) {
	b := assay.MustGet("PCR")
	opts := Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
		Engine:    ExactILP,
		Verify:    true,
	}
	prior, err := Synthesize(b.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	fault := sim.Fault{Kind: sim.FaultStorage, Time: prior.Schedule.Makespan / 2,
		Edge: prior.Architecture.UsedEdges[0]}
	rec, err := Recover(opts, prior, fault)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Verified {
		t.Error("exact-engine recovery not verified")
	}
	if rec.SchedInfo == nil {
		t.Error("exact-engine recovery carries no solver info")
	}
	for _, a := range prior.Schedule.Assignments {
		if a.Start < fault.Time && rec.Schedule.Assignments[a.Op] != a {
			t.Errorf("executed op %d re-planned by the exact engine", a.Op)
		}
	}
}

func TestRecoverFaultAtZeroAndAfterEnd(t *testing.T) {
	prior, opts := recoverFixture(t, "CPA")
	opts.Verify = true
	// Fault at t=0: nothing executed, full re-synthesis on the masked chip.
	rec, err := Recover(opts, prior, sim.Fault{Kind: sim.FaultDevice, Time: 0, Device: prior.Schedule.Devices - 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovery.PreservedOps != 0 {
		t.Errorf("PreservedOps = %d at t=0", rec.Recovery.PreservedOps)
	}
	for _, a := range rec.Schedule.Assignments {
		if a.Device == prior.Schedule.Devices-1 {
			t.Errorf("op %d still on failed device", a.Op)
		}
	}
	// Fault after the last start: the whole plan is pinned; recovery is the
	// prior plan plus re-derived I/O routing.
	late := sim.Fault{Kind: sim.FaultDevice, Time: prior.Schedule.Makespan + 1, Device: 0}
	rec, err = Recover(opts, prior, late)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.Recovery.PreservedOps, len(prior.Schedule.Assignments); got != want {
		t.Errorf("PreservedOps = %d, want %d", got, want)
	}
	if rec.Schedule.Makespan != prior.Schedule.Makespan {
		t.Errorf("fully-pinned recovery changed makespan %d -> %d",
			prior.Schedule.Makespan, rec.Schedule.Makespan)
	}
}

func TestRecoverRejectsBadInputs(t *testing.T) {
	prior, opts := recoverFixture(t, "PCR")
	if _, err := Recover(opts, nil, sim.Fault{}); err == nil {
		t.Error("nil prior accepted")
	}
	if _, err := Recover(opts, prior, sim.Fault{Kind: sim.FaultDevice, Time: -1}); err == nil {
		t.Error("negative fault time accepted")
	}
	if _, err := Recover(opts, prior, sim.Fault{Kind: sim.FaultDevice, Device: 99}); err == nil {
		t.Error("out-of-range device accepted")
	}
	if _, err := Recover(opts, prior, sim.Fault{Kind: sim.FaultChannel, Edge: arch.EdgeID(1 << 20)}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
