package flowsyn

import (
	"context"
	"errors"
	"fmt"

	"flowsyn/internal/arch"
	"flowsyn/internal/sim"
)

// FaultKind classifies a mid-execution chip fault.
type FaultKind int

const (
	// DeviceFault fails a device chamber: no re-planned operation may run on
	// it. Its ports stay usable, so fluids already inside still transport
	// out.
	DeviceFault FaultKind = iota
	// ChannelFault fails a channel segment: banned from all re-planned
	// routing and storage.
	ChannelFault
	// StorageFault degrades a channel segment: it still transports but can
	// no longer hold a cached fluid.
	StorageFault
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case ChannelFault:
		return "channel"
	case StorageFault:
		return "storage"
	default:
		return "device"
	}
}

// Fault is a mid-execution fault injected into a running assay at time Time.
type Fault struct {
	// Kind selects what failed.
	Kind FaultKind
	// Time is the injection instant in seconds from assay start. Everything
	// the chip completed or had in flight before it is preserved by a
	// recovery.
	Time int
	// Device is the failed device index (DeviceFault only).
	Device int
	// Channel is the failed channel-segment ID (ChannelFault and
	// StorageFault). Segment IDs index the synthesis grid's edges — see
	// Result.SnapshotASCII for where each segment sits.
	Channel int
}

// String renders the fault like "device 2 @ t=130".
func (f Fault) String() string {
	if f.Kind == DeviceFault {
		return fmt.Sprintf("device %d @ t=%d", f.Device, f.Time)
	}
	return fmt.Sprintf("%s %d @ t=%d", f.Kind, f.Channel, f.Time)
}

func (f Fault) internal() sim.Fault {
	kind := sim.FaultDevice
	switch f.Kind {
	case ChannelFault:
		kind = sim.FaultChannel
	case StorageFault:
		kind = sim.FaultStorage
	}
	return sim.Fault{Kind: kind, Time: f.Time, Device: f.Device, Edge: arch.EdgeID(f.Channel)}
}

func faultFrom(f sim.Fault) Fault {
	kind := DeviceFault
	switch f.Kind {
	case sim.FaultChannel:
		kind = ChannelFault
	case sim.FaultStorage:
		kind = StorageFault
	}
	return Fault{Kind: kind, Time: f.Time, Device: f.Device, Channel: int(f.Edge)}
}

// Recover submits a fault-tolerant online re-synthesis of a finished job:
// fault is injected into its execution at fault.Time, every operation and
// transport the chip had completed or in flight is frozen exactly as
// executed, and only the remaining suffix is re-planned on the masked chip —
// the failed resource excluded, devices unmoved, the prior plan warm-starting
// the solve. The recovered result's Recovery method reports what was
// preserved and what the fault cost in makespan.
//
// The prior ticket must have completed successfully. Recovery jobs bypass the
// session caches in both directions (a spliced plan is specific to its fault
// and is never served as, or from, an ordinary synthesis). The engine,
// objective and verification settings are inherited from the prior job; with
// Verify set, the spliced plan is replayed end to end and any re-executed
// prefix work, pre-fault suffix start or mask violation fails the job with a
// *VerifyError.
func (s *Solver) Recover(ctx context.Context, prior *Ticket, fault Fault) (*Ticket, error) {
	if prior == nil {
		return nil, errors.New("flowsyn: recover needs a prior ticket")
	}
	if fault.Kind != DeviceFault && fault.Kind != ChannelFault && fault.Kind != StorageFault {
		return nil, &OptionError{Field: "Fault.Kind", Value: int(fault.Kind), Reason: "unknown fault kind"}
	}
	if fault.Time < 0 {
		return nil, &OptionError{Field: "Fault.Time", Value: fault.Time, Reason: "fault time must be >= 0"}
	}
	inner, err := s.inner.Recover(ctx, prior.inner, fault.internal())
	if err != nil {
		return nil, err
	}
	return &Ticket{inner: inner}, nil
}

// RecoveryStats summarizes a fault recovery: the injected fault, how much of
// the interrupted execution the splice preserved, and the makespan cost.
type RecoveryStats struct {
	// Fault is the injected fault the recovery worked around.
	Fault Fault
	// PreservedOps counts operations carried over exactly as executed — zero
	// re-executed work.
	PreservedOps int
	// PreservedRoutes counts executed transport routes carried over verbatim.
	PreservedRoutes int
	// ReroutedTransports counts transport routes planned fresh around the
	// fault.
	ReroutedTransports int
	// OldMakespan and NewMakespan compare the faulted and recovered plans;
	// MakespanDelta is their difference.
	OldMakespan, NewMakespan, MakespanDelta int
}

// Recovery returns the fault-recovery summary of a result produced by
// Solver.Recover, or nil for an ordinary synthesis.
func (r *Result) Recovery() *RecoveryStats {
	rec := r.inner.Recovery
	if rec == nil {
		return nil
	}
	return &RecoveryStats{
		Fault:              faultFrom(rec.Fault),
		PreservedOps:       rec.PreservedOps,
		PreservedRoutes:    rec.PreservedRoutes,
		ReroutedTransports: rec.ReroutedTransports,
		OldMakespan:        rec.OldMakespan,
		NewMakespan:        rec.NewMakespan,
		MakespanDelta:      rec.MakespanDelta,
	}
}

// sampleFaults derives FaultSamples deterministic single faults from a
// synthesized result: injection instants spread evenly across the execution,
// fault kinds cycling over the applicable ones (device faults need a second
// device to absorb the work; segment faults need a routed chip).
func sampleFaults(res *Result, samples int) []Fault {
	devices := res.inner.Schedule.Devices
	edges := res.inner.Architecture.UsedEdges
	var kinds []FaultKind
	if devices > 1 {
		kinds = append(kinds, DeviceFault)
	}
	if len(edges) > 0 {
		kinds = append(kinds, ChannelFault, StorageFault)
	}
	if len(kinds) == 0 {
		return nil
	}
	out := make([]Fault, 0, samples)
	for j := 0; j < samples; j++ {
		f := Fault{
			Kind: kinds[j%len(kinds)],
			Time: res.Makespan() * (j + 1) / (samples + 1),
		}
		switch f.Kind {
		case DeviceFault:
			f.Device = j % devices
		default:
			f.Channel = int(edges[j%len(edges)])
		}
		out = append(out, f)
	}
	return out
}

// exploreFaults runs the k-fault-tolerance axis of a grid sweep: for each
// successfully synthesized grid point, FaultSamples single faults are
// injected at spread instants and recovered; the counts land in the
// GridResult.
func (s *Solver) exploreFaults(ctx context.Context, out []GridResult, tickets []*Ticket, samples int) {
	for i := range out {
		if tickets[i] == nil || out[i].Err != nil || out[i].Result == nil {
			continue
		}
		g := &out[i]
		// Recoveries run submit-and-wait: the sweep session's queue is sized
		// to the grid points, not to grid points × samples, and a recovery is
		// one bounded solve — pipelining buys little here.
		for _, f := range sampleFaults(g.Result, samples) {
			g.FaultsInjected++
			t, err := s.Recover(ctx, tickets[i], f)
			if err != nil {
				continue
			}
			res, err := t.Wait(context.Background())
			if err != nil {
				continue
			}
			g.FaultRecoveries++
			if m := res.Makespan(); m > g.WorstRecoveryMakespan {
				g.WorstRecoveryMakespan = m
			}
		}
	}
}
