package flowsyn

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"flowsyn/internal/milp"
)

// The property-based cross-engine harness: a seeded (n, width, seed) grid of
// random assays is synthesized by every engine under both objectives — and
// under all three storage strategies (distributed channels, dedicated unit,
// single-slot hybrid cache with alternating eviction) — on the concurrent
// batch runner with verification forced on, asserting that
//
//   - every synthesis succeeds and passes the independent invariant checker
//     (including the simulator replay cross-check at every instant),
//   - analytic lower bounds (critical path, total work / devices) hold for
//     every engine's makespan, and
//   - whenever the exact ILP proves a pure-makespan optimum, that optimum
//     lower-bounds every heuristic makespan for the same assay.

// propertyCase identifies one synthesis of the sweep.
type propertyCase struct {
	n, width int
	seed     int64
	engine   Engine
	obj      Objective
	storage  StoragePolicy
}

func (c propertyCase) jobName() string {
	return fmt.Sprintf("n%d-w%d-s%d-e%d-o%d-st%s", c.n, c.width, c.seed, c.engine, c.obj, c.storage)
}

func (c propertyCase) assayKey() string {
	return fmt.Sprintf("n%d-w%d-s%d", c.n, c.width, c.seed)
}

// propertySweep builds the job list: every assay of the (n, width, seed)
// grid under every engine × objective combination. The exact ILP runs with a
// short time limit — on larger assays it returns its warm-start incumbent at
// the limit, which must verify just like a proven optimum.
func propertySweep(short bool) ([]Job, []propertyCase) {
	ns := []int{5, 8, 11, 14, 17}
	widths := []int{2, 3}
	seeds := []int64{1, 2, 3, 4, 5}
	engines := []Engine{HeuristicEngine, AutoEngine, ILPEngine}
	if short {
		// Keep -short fast on one core: fewer assays, no exact-ILP arms.
		seeds = seeds[:2]
		engines = []Engine{HeuristicEngine}
	}
	// The storage-strategy axis: distributed rides every engine × objective
	// arm above; the serialized strategies (dedicated unit, hybrid cache) run
	// both engines under the storage-aware objective. The hybrid arm pins the
	// cache to a single slot with a seed-alternated eviction policy so the
	// eviction path is genuinely exercised, not just configured.
	stratEngines := []Engine{HeuristicEngine, ILPEngine}
	if short {
		stratEngines = []Engine{HeuristicEngine}
	}
	var jobs []Job
	var cases []propertyCase
	for _, n := range ns {
		for _, w := range widths {
			for _, seed := range seeds {
				a := RandomAssay(n, w, seed)
				for _, engine := range engines {
					for _, obj := range []Objective{MinimizeTimeAndStorage, MinimizeTimeOnly} {
						c := propertyCase{n: n, width: w, seed: seed, engine: engine, obj: obj, storage: DistributedStorage}
						cases = append(cases, c)
						jobs = append(jobs, Job{
							Name:  c.jobName(),
							Assay: a,
							Options: Options{
								Devices:      3,
								Transport:    10,
								GridRows:     6,
								GridCols:     6,
								Engine:       engine,
								Objective:    obj,
								ILPTimeLimit: 300 * time.Millisecond,
							},
						})
					}
				}
				for _, engine := range stratEngines {
					for _, pol := range []StoragePolicy{DedicatedStorage, HybridStorage} {
						c := propertyCase{n: n, width: w, seed: seed, engine: engine, obj: MinimizeTimeAndStorage, storage: pol}
						cases = append(cases, c)
						opts := Options{
							Devices:      3,
							Transport:    10,
							GridRows:     6,
							GridCols:     6,
							Engine:       engine,
							Objective:    MinimizeTimeAndStorage,
							ILPTimeLimit: 300 * time.Millisecond,
							Storage:      pol,
						}
						if pol == HybridStorage {
							opts.CacheSlots = 1
							if seed%2 == 0 {
								opts.Eviction = "earliest-next-fetch"
							} else {
								opts.Eviction = "lru"
							}
						}
						jobs = append(jobs, Job{Name: c.jobName(), Assay: a, Options: opts})
					}
				}
			}
		}
	}
	return jobs, cases
}

func TestPropertyCrossEngineVerification(t *testing.T) {
	jobs, cases := propertySweep(testing.Short())
	assays := map[string]bool{}
	for _, c := range cases {
		assays[c.assayKey()] = true
	}
	if !testing.Short() && len(assays) < 50 {
		t.Fatalf("sweep covers %d assays, want >= 50", len(assays))
	}

	results, err := SynthesizeBatch(context.Background(), jobs, BatchOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}

	makespans := map[propertyCase]int{}
	ilpTimeOnlyOptimal := map[string]int{} // assay key -> proven optimal makespan
	infeasible := 0
	for i, jr := range results {
		c := cases[i]
		if jr.Err != nil {
			// A serialized strategy can be legitimately unroutable on the
			// tiny 6x6 grid (the unit's fixed port windows leave no
			// conflict-free channel) — but a verification failure is a bug
			// under every strategy.
			var verr *VerifyError
			if c.storage != DistributedStorage && !errors.As(jr.Err, &verr) {
				infeasible++
				continue
			}
			t.Errorf("%s: synthesis failed: %v", jr.Job.Name, jr.Err)
			continue
		}
		res := jr.Result
		if !res.Verified() {
			t.Errorf("%s: verify stage did not run despite BatchOptions.Verify", jr.Job.Name)
		}
		// Re-verify through the public API: the on-demand checker must agree
		// with the pipeline stage.
		if err := res.Verify(); err != nil {
			t.Errorf("%s: re-verification failed: %v", jr.Job.Name, err)
		}
		makespans[c] = res.Makespan()

		// Analytic lower bounds that hold for every valid schedule: the
		// longest dependency chain (transport-free: a chain can stay on one
		// device) and the total work spread over all devices.
		g := jr.Job.Assay.g
		cp, err := g.CriticalPathLength(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan() < cp {
			t.Errorf("%s: makespan %d beats the critical-path bound %d", jr.Job.Name, res.Makespan(), cp)
		}
		devices := jr.Job.Options.Devices
		if lb := (g.TotalWork() + devices - 1) / devices; res.Makespan() < lb {
			t.Errorf("%s: makespan %d beats the work bound %d", jr.Job.Name, res.Makespan(), lb)
		}

		if c.engine == ILPEngine && c.obj == MinimizeTimeOnly {
			if info := res.inner.SchedInfo; info != nil && info.Status == milp.StatusOptimal {
				ilpTimeOnlyOptimal[c.assayKey()] = res.Makespan()
			}
		}
	}

	// A proven pure-makespan optimum lower-bounds every other engine's
	// makespan on the same assay, under either objective.
	checked := 0
	for c, ms := range makespans {
		opt, ok := ilpTimeOnlyOptimal[c.assayKey()]
		if !ok {
			continue
		}
		checked++
		if ms < opt {
			t.Errorf("%s: makespan %d beats the proven optimum %d", c.jobName(), ms, opt)
		}
	}
	if !testing.Short() {
		// The strategy arms must not silently degenerate into a sweep of
		// infeasible cells: the bulk of the serialized syntheses has to
		// succeed and verify for the strategy-aware invariants to be
		// meaningfully exercised.
		stratVerified := 0
		for c := range makespans {
			if c.storage != DistributedStorage {
				stratVerified++
			}
		}
		if stratVerified < 2*infeasible {
			t.Errorf("only %d serialized-strategy syntheses verified vs %d infeasible — the strategy arms degenerated",
				stratVerified, infeasible)
		}
		t.Logf("verified %d syntheses over %d assays (%d serialized-strategy, %d infeasible); %d cross-checked against proven ILP optima",
			len(makespans), len(assays), stratVerified, infeasible, checked)
	}
}

// TestPropertyVerifyCatchesSabotage guards the harness itself: a result whose
// schedule is corrupted after synthesis must fail re-verification — proving
// the property sweep above would actually catch a wrong engine.
func TestPropertyVerifyCatchesSabotage(t *testing.T) {
	res, err := Synthesize(RandomAssay(8, 2, 99), Options{
		Devices: 3, Transport: 10, GridRows: 6, GridCols: 6,
		Engine: HeuristicEngine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	res.inner.Schedule.Assignments[0].Start -= 1000
	res.inner.Schedule.Assignments[0].End -= 1000
	err = res.Verify()
	if err == nil {
		t.Fatal("corrupted result passed verification")
	}
	verr, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("got %T (%v), want *VerifyError", err, err)
	}
	if len(verr.Violations) == 0 {
		t.Fatal("VerifyError carries no violations")
	}
}
