// Custom assay: build a protocol programmatically with the public API,
// synthesize a chip for it, and export the assay as JSON and DOT for reuse
// with the command-line tools.
//
// The protocol is a small serial dilution followed by a detection mix — a
// shape that appears in many wet-lab protocols.
//
// Run with:
//
//	go run ./examples/customassay
package main

import (
	"fmt"
	"log"
	"os"

	"flowsyn"
)

func main() {
	a := flowsyn.NewAssay("serial-dilution")

	// Stage 1: dilute the sample twice (each dilution mixes the previous
	// product with fresh buffer).
	d1, err := a.AddOperation("dilute1", flowsyn.Dilute, 30, 2)
	check(err)
	d2, err := a.AddOperation("dilute2", flowsyn.Dilute, 30, 1)
	check(err)

	// Stage 2: two reagent mixes run on the diluted product.
	m1, err := a.AddOperation("reagentA", flowsyn.Mix, 45, 1)
	check(err)
	m2, err := a.AddOperation("reagentB", flowsyn.Mix, 45, 1)
	check(err)

	// Stage 3: combine both reactions for the readout.
	read, err := a.AddOperation("readout", flowsyn.Mix, 25, 0)
	check(err)

	check(a.AddDependency(d1, d2))
	check(a.AddDependency(d2, m1))
	check(a.AddDependency(d2, m2))
	check(a.AddDependency(m1, read))
	check(a.AddDependency(m2, read))
	check(a.Validate())

	res, err := flowsyn.Synthesize(a, flowsyn.Options{
		Devices:   2,
		Transport: 10,
		GridRows:  4,
		GridCols:  4,
	})
	check(err)

	fmt.Printf("%s\n%s\n\n", a, res.Summary())
	fmt.Print(res.GanttChart())

	// Export for the CLI tools: `flowsyn -assay serial_dilution.json ...`.
	f, err := os.Create("serial_dilution.json")
	check(err)
	check(a.WriteJSON(f))
	check(f.Close())
	fmt.Println("\nwrote serial_dilution.json")

	dot, err := os.Create("serial_dilution.dot")
	check(err)
	check(a.WriteDOT(dot))
	check(dot.Close())
	fmt.Println("wrote serial_dilution.dot")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
