// PCR walk-through: reproduces the motivation of the paper's Fig. 2 — with a
// single mixer, the order in which the seven PCR mixing operations execute
// decides how many intermediate fluids must be stored and for how long —
// and then shows the synthesized chip executing, snapshot by snapshot.
//
// Run with:
//
//	go run ./examples/pcr
package main

import (
	"fmt"
	"log"

	"flowsyn"
)

func main() {
	assay, opts, err := flowsyn.Benchmark("PCR")
	if err != nil {
		log.Fatal(err)
	}

	// Storage-aware scheduling (the paper's objective (6) with β > 0):
	// the scheduler finds the Fig. 2(c)-style order with 3 stores.
	withStorage, err := flowsyn.Synthesize(assay, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Execution-time-only scheduling (β = 0): more intermediate fluids wait
	// in storage, as in Fig. 2(b).
	optsTimeOnly := opts
	optsTimeOnly.Objective = flowsyn.MinimizeTimeOnly
	timeOnly, err := flowsyn.Synthesize(assay, optsTimeOnly)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PCR on a single mixer (the paper's Fig. 2):")
	fmt.Printf("  time-only scheduling:    %d stores, peak capacity %d, tE = %d s\n",
		timeOnly.StoreCount(), timeOnly.StorageCapacity(), timeOnly.Makespan())
	fmt.Printf("  storage-aware scheduling: %d stores, peak capacity %d, tE = %d s\n",
		withStorage.StoreCount(), withStorage.StorageCapacity(), withStorage.Makespan())
	fmt.Println()

	fmt.Println("storage-aware schedule:")
	fmt.Print(withStorage.GanttChart())

	// Show the chip at a moment when a fluid is cached in a channel segment
	// (the '#' segments) — the distributed storage in action.
	for _, t := range withStorage.InterestingTimes() {
		snap := withStorage.SnapshotASCII(t)
		fmt.Println()
		fmt.Print(snap)
		break
	}
}
