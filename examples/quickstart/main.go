// Quickstart: open a solver session, submit the PCR assay as a job, watch
// its progress stream, and print what came out — the same API the flowsynd
// daemon serves over HTTP.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flowsyn"
)

func main() {
	// Every benchmark ships with the synthesis options used in the paper's
	// Table 2 (device budget, transport time, connection-grid size).
	assay, opts, err := flowsyn.Benchmark("PCR")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", assay)

	// A Solver session owns a worker pool and a content-addressed result
	// cache; it serves any number of jobs until closed. One-shot callers
	// can still use flowsyn.Synthesize, which wraps an ephemeral session.
	solver, err := flowsyn.New(flowsyn.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	ticket, err := solver.Submit(context.Background(), flowsyn.Job{Assay: assay, Options: opts})
	if err != nil {
		log.Fatal(err)
	}

	// The ticket streams progress while the job runs: queueing, pipeline
	// stages, and each improving incumbent of the exact solve.
	for e := range ticket.Events() {
		switch e.Kind {
		case flowsyn.ProgressStageEnd:
			fmt.Printf("  %-8s %v\n", e.Stage, e.Duration)
		case flowsyn.ProgressIncumbent:
			fmt.Printf("  incumbent makespan %d s (node %d)\n", e.Makespan, e.Nodes)
		}
	}

	res, err := ticket.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: %s\n", res.Summary())
	fmt.Printf("the chip caches %d intermediate fluids in channel segments "+
		"(peak %d at once)\n", res.StoreCount(), res.StorageCapacity())

	dr, de, dp := res.ChipDimensions()
	fmt.Printf("layout: %s after synthesis, %s with devices, %s compressed\n", dr, de, dp)

	// Submitting the identical job again is answered from the result cache.
	again, err := solver.Submit(context.Background(), flowsyn.Job{Assay: assay, Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := again.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: cache hit = %v in %v\n", res2.JobStats().CacheHit, res2.JobStats().Runtime)

	fmt.Println("\nschedule:")
	fmt.Print(res.GanttChart())
}
