// Quickstart: synthesize a biochip for the PCR assay with one function call
// and print what came out.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flowsyn"
)

func main() {
	// Every benchmark ships with the synthesis options used in the paper's
	// Table 2 (device budget, transport time, connection-grid size).
	assay, opts, err := flowsyn.Benchmark("PCR")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", assay)

	res, err := flowsyn.Synthesize(assay, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: %s\n", res.Summary())
	fmt.Printf("the chip caches %d intermediate fluids in channel segments "+
		"(peak %d at once)\n", res.StoreCount(), res.StorageCapacity())

	dr, de, dp := res.ChipDimensions()
	fmt.Printf("layout: %s after synthesis, %s with devices, %s compressed\n", dr, de, dp)

	fmt.Println("\nschedule:")
	fmt.Print(res.GanttChart())
}
