// Grid exploration: sweep the connection-grid size for one assay and watch
// how many channel segments and valves the synthesized chip actually needs —
// the resource-confinement effect behind the paper's Fig. 8 (used resources
// stay a fraction of the grid as it grows).
//
// Run with:
//
//	go run ./examples/gridexploration
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flowsyn"
)

func main() {
	assay, opts, err := flowsyn.Benchmark("RA30")
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Grid\tsegments used\tvalves\tedge ratio\tvalve ratio\tutilization")
	for _, size := range []int{4, 5, 6, 7} {
		o := opts
		o.GridRows, o.GridCols = size, size
		res, err := flowsyn.Synthesize(assay, o)
		if err != nil {
			fmt.Fprintf(w, "%dx%d\t(%v)\n", size, size, err)
			continue
		}
		fmt.Fprintf(w, "%dx%d\t%d\t%d\t%.2f\t%.2f\t%.1f%%\n",
			size, size,
			res.ChannelSegments(), res.Valves(),
			res.EdgeRatio(), res.ValveRatio(),
			100*res.ChannelUtilization())
	}
	w.Flush()
	fmt.Println("\nthe chip keeps using a small, stable set of segments while the grid grows:")
	fmt.Println("architectural synthesis confines resource usage (the paper's Fig. 8 claim)")
}
