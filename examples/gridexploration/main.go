// Grid exploration: sweep the connection-grid size for one assay and watch
// how many channel segments and valves the synthesized chip actually needs —
// the resource-confinement effect behind the paper's Fig. 8 (used resources
// stay a fraction of the grid as it grows).
//
// The sweep runs on the concurrent batch runner: every grid size is
// synthesized in its own worker, and the results come back in deterministic
// ascending-size order.
//
// Run with:
//
//	go run ./examples/gridexploration
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flowsyn"
)

func main() {
	assay, opts, err := flowsyn.Benchmark("RA30")
	if err != nil {
		log.Fatal(err)
	}

	sweep, err := flowsyn.ExploreGrids(context.Background(), assay, opts, flowsyn.GridRange{
		MinSize: 4,
		MaxSize: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Grid\tsegments used\tvalves\tedge ratio\tvalve ratio\tutilization")
	for _, p := range sweep {
		if p.Err != nil {
			fmt.Fprintf(w, "%dx%d\t(%v)\n", p.Rows, p.Cols, p.Err)
			continue
		}
		res := p.Result
		fmt.Fprintf(w, "%dx%d\t%d\t%d\t%.2f\t%.2f\t%.1f%%\n",
			p.Rows, p.Cols,
			res.ChannelSegments(), res.Valves(),
			res.EdgeRatio(), res.ValveRatio(),
			100*res.ChannelUtilization())
	}
	w.Flush()
	fmt.Println("\nthe chip keeps using a small, stable set of segments while the grid grows:")
	fmt.Println("architectural synthesis confines resource usage (the paper's Fig. 8 claim)")
}
