// Grid exploration: sweep the connection-grid size for one assay inside a
// solver session and watch how many channel segments and valves the
// synthesized chip actually needs — the resource-confinement effect behind
// the paper's Fig. 8 (used resources stay a fraction of the grid as it
// grows).
//
// The sweep is where the session pays off: the expensive scheduling solve
// depends on the assay and device options but not on the grid, so the
// session's schedule cache runs it once and every further grid size re-runs
// only architectural and physical design. The session stats printed at the
// end show fewer full solves than grid points.
//
// Run with:
//
//	go run ./examples/gridexploration
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flowsyn"
)

func main() {
	assay, opts, err := flowsyn.Benchmark("RA30")
	if err != nil {
		log.Fatal(err)
	}

	solver, err := flowsyn.New(flowsyn.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	sweep, err := solver.ExploreGrids(context.Background(), assay, opts, flowsyn.GridRange{
		MinSize: 4,
		MaxSize: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Grid\tsegments used\tvalves\tedge ratio\tvalve ratio\tutilization\tschedule")
	for _, p := range sweep {
		if p.Err != nil {
			fmt.Fprintf(w, "%dx%d\t(%v)\n", p.Rows, p.Cols, p.Err)
			continue
		}
		res := p.Result
		provenance := "solved"
		if js := res.JobStats(); js != nil && (js.ScheduleCacheHit || js.CacheHit) {
			provenance = "cached"
		}
		fmt.Fprintf(w, "%dx%d\t%d\t%d\t%.2f\t%.2f\t%.1f%%\t%s\n",
			p.Rows, p.Cols,
			res.ChannelSegments(), res.Valves(),
			res.EdgeRatio(), res.ValveRatio(),
			100*res.ChannelUtilization(), provenance)
	}
	w.Flush()

	st := solver.Stats()
	fmt.Printf("\nsession: %d jobs, %d full scheduling solves, %d schedule-cache hits, %d result-cache hits\n",
		st.Completed, st.ScheduleSolves, st.ScheduleCacheHits, st.ResultCacheHits)
	fmt.Println("the chip keeps using a small, stable set of segments while the grid grows:")
	fmt.Println("architectural synthesis confines resource usage (the paper's Fig. 8 claim)")
}
