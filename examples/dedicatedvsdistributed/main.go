// Dedicated vs distributed storage: the head-to-head behind the paper's
// Fig. 10. The same schedule is executed twice — once with intermediate
// fluids cached on the spot in channel segments (the paper's contribution)
// and once with a classic dedicated storage unit whose single multiplexed
// port serializes accesses — and the execution times and valve budgets are
// compared.
//
// Run with:
//
//	go run ./examples/dedicatedvsdistributed
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flowsyn"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\ttE distributed\ttE dedicated\texec ratio\tvalves dist\tvalves ded\tvalve ratio")
	for _, name := range flowsyn.BenchmarkNames() {
		assay, opts, err := flowsyn.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flowsyn.Synthesize(assay, opts)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := res.CompareDedicated()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d s\t%d s\t%.2f\t%d\t%d\t%.2f\n",
			name,
			cmp.DistributedMakespan, cmp.DedicatedMakespan, cmp.ExecRatio,
			cmp.DistributedValves, cmp.DedicatedValves, cmp.ValveRatio)
	}
	w.Flush()
	fmt.Println("\nratios < 1 mean distributed channel storage wins (the paper reports up to ~28% on RA100)")
}
