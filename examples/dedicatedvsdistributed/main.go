// Dedicated vs distributed vs hybrid storage: the head-to-head behind the
// paper's Fig. 10, done by synthesis. Each benchmark is synthesized three
// times from scratch — once with intermediate fluids cached on the spot in
// channel segments (the paper's contribution), once with a classic dedicated
// storage unit whose single multiplexed port serializes accesses, and once
// with a bounded hybrid cache (two channel slots in front of the unit, LRU
// eviction) — and the execution times, valve budgets and port queue delays
// are compared. Because the dedicated and hybrid schedules are *optimized*
// under their storage model rather than re-timed from the distributed plan,
// the comparison is the fair one the two papers imply.
//
// Run with:
//
//	go run ./examples/dedicatedvsdistributed
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flowsyn"
)

func main() {
	policies := []flowsyn.StoragePolicy{
		flowsyn.DistributedStorage,
		flowsyn.DedicatedStorage,
		flowsyn.HybridStorage,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\tStrategy\ttE\tstores\tunit stores\tvalves\tunit valves\tqueue delay")
	for _, name := range flowsyn.BenchmarkNames() {
		for _, pol := range policies {
			assay, opts, err := flowsyn.Benchmark(name)
			if err != nil {
				log.Fatal(err)
			}
			opts.Storage = pol
			opts.Verify = true
			res, err := flowsyn.Synthesize(assay, opts)
			if err != nil {
				// Tight grids can leave a fixed unit-port window unroutable;
				// report the cell as infeasible rather than aborting the table.
				fmt.Fprintf(w, "%s\t%s\tinfeasible: %v\n", name, pol, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%d s\t%d\t%d\t%d\t%d\t%d s\n",
				name, pol,
				res.Makespan(),
				res.StoreCount(), res.UnitStoreCount(),
				res.Valves(), res.UnitValves(),
				res.UnitQueueDelay())
		}
	}
	w.Flush()
	fmt.Println("\ndistributed never loses on makespan: the dedicated unit only adds port serialization")
	fmt.Println("and store/fetch transport legs (the paper reports up to ~28% slowdown on RA100), while")
	fmt.Println("the hybrid cache recovers most of the gap with a bounded channel budget")
}
