package flowsyn

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarkPCR(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumOperations() != 7 {
		t.Errorf("PCR has %d ops, want 7", a.NumOperations())
	}
	if opts.Devices < 1 || opts.Transport < 1 {
		t.Errorf("implausible options: %+v", opts)
	}
	if _, _, err := Benchmark("NOPE"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSynthesizePublicAPI(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	res, err := Synthesize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() <= 0 {
		t.Error("non-positive makespan")
	}
	if res.ChannelSegments() <= 0 || res.Valves() <= 0 {
		t.Errorf("empty chip: ne=%d nv=%d", res.ChannelSegments(), res.Valves())
	}
	if res.EdgeRatio() <= 0 || res.EdgeRatio() >= 1 {
		t.Errorf("edge ratio %v out of (0,1)", res.EdgeRatio())
	}
	dr, de, dp := res.ChipDimensions()
	if dr == "" || de == "" || dp == "" {
		t.Error("missing chip dimensions")
	}
	if !strings.Contains(res.Summary(), "tE=") {
		t.Errorf("Summary = %q", res.Summary())
	}
	if res.GanttChart() == "" {
		t.Error("empty Gantt chart")
	}
	if u := res.ChannelUtilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
	times := res.InterestingTimes()
	if len(times) == 0 {
		t.Fatal("no interesting times")
	}
	if !strings.Contains(res.SnapshotASCII(times[0]), "legend") {
		t.Error("ASCII snapshot missing legend")
	}
	if !strings.Contains(res.SnapshotSVG(times[0]), "<svg") {
		t.Error("SVG snapshot missing root element")
	}
}

func TestCustomAssayBuildAndSynthesize(t *testing.T) {
	a := NewAssay("custom")
	op1, err := a.AddOperation("mix1", Mix, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := a.AddOperation("heat1", Heat, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddDependency(op1, op2); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(a, Options{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() < 90 {
		t.Errorf("makespan %d below total serial work", res.Makespan())
	}
}

func TestAssayJSONRoundTrip(t *testing.T) {
	a := NewAssay("roundtrip")
	op1, _ := a.AddOperation("a", Dilute, 20, 1)
	op2, _ := a.AddOperation("b", Detect, 10, 0)
	if err := a.AddDependency(op1, op2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAssay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "roundtrip" || back.NumOperations() != 2 {
		t.Errorf("round trip mismatch: %v", back)
	}
	var dot bytes.Buffer
	if err := a.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output missing digraph")
	}
}

func TestRandomAssayPublic(t *testing.T) {
	a := RandomAssay(15, 3, 7)
	if a.NumOperations() != 15 {
		t.Errorf("ops = %d, want 15", a.NumOperations())
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestCompareDedicatedPublic(t *testing.T) {
	a, opts, err := Benchmark("RA30")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	res, err := Synthesize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := res.CompareDedicated()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ExecRatio > 1.0001 || cmp.ExecRatio <= 0 {
		t.Errorf("exec ratio %v out of (0,1]", cmp.ExecRatio)
	}
	if cmp.ValveRatio >= 1 {
		t.Errorf("valve ratio %v should be below 1", cmp.ValveRatio)
	}
}

func TestBenchmarkNamesComplete(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		a, opts, err := Benchmark(n)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = HeuristicEngine
		if _, err := Synthesize(a, opts); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}
