package flowsyn

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// heuristicJobs builds one deterministic (heuristic-engine) job per Table 2
// benchmark.
func heuristicJobs(t *testing.T) []Job {
	t.Helper()
	names := BenchmarkNames()
	jobs := make([]Job, 0, len(names))
	for _, name := range names {
		a, opts, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = HeuristicEngine
		jobs = append(jobs, Job{Name: name, Assay: a, Options: opts})
	}
	return jobs
}

// report renders the deterministic per-job outcome columns (everything in
// Summary: makespan, architecture size, ratios, physical dimensions).
func report(t *testing.T, results []JobResult) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.Name, r.Err)
		}
		b.WriteString(r.Job.Name)
		b.WriteString(": ")
		b.WriteString(r.Result.Summary())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSynthesizeBatchDeterministicUnderParallelism(t *testing.T) {
	sequential, err := SynthesizeBatch(context.Background(), heuristicJobs(t), BatchOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := report(t, sequential)

	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		parallel, err := SynthesizeBatch(context.Background(), heuristicJobs(t), BatchOptions{Concurrency: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := report(t, parallel); got != want {
			t.Errorf("concurrency %d changed the report.\nsequential:\n%s\nparallel:\n%s", workers, want, got)
		}
	}
}

func TestSynthesizeBatchMatchesSequentialAPI(t *testing.T) {
	jobs := heuristicJobs(t)
	results, err := SynthesizeBatch(context.Background(), jobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		direct, err := Synthesize(jobs[i].Assay, jobs[i].Options)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Result.Summary() != direct.Summary() {
			t.Errorf("%s: batch %q != direct %q", jobs[i].Name, jr.Result.Summary(), direct.Summary())
		}
	}
}

func TestSynthesizeBatchReportsJobErrors(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	bad := opts
	bad.Devices = -1
	results, err := SynthesizeBatch(context.Background(), []Job{
		{Name: "ok", Assay: a, Options: opts},
		{Name: "bad-devices", Assay: a, Options: bad},
		{Name: "no-assay"},
	}, BatchOptions{Concurrency: 2})
	if err != nil {
		t.Fatalf("job failures must not fail the batch: %v", err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Errorf("healthy job failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("invalid options slipped through")
	}
	if results[2].Err == nil {
		t.Error("missing assay slipped through")
	}
}

func TestSynthesizeBatchCancellation(t *testing.T) {
	// Enough slow-ish jobs that cancellation lands mid-batch.
	var jobs []Job
	for i := 0; i < 16; i++ {
		for _, j := range heuristicJobs(t) {
			jobs = append(jobs, j)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	results, err := SynthesizeBatch(ctx, jobs, BatchOptions{Concurrency: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("batch took %v to honor cancellation", elapsed)
	}
	cancelledCount := 0
	for _, r := range results {
		if r.Result == nil && r.Err == nil {
			t.Fatalf("%s: neither result nor error", r.Job.Name)
		}
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			cancelledCount++
		}
	}
	if cancelledCount == 0 {
		t.Error("no job reported the cancellation")
	}
}

func TestSynthesizeContextCancelledMidILP(t *testing.T) {
	// PCR itself now solves to proven optimality in milliseconds, so the
	// cancellation must land on a model the solver genuinely chews on: a
	// 14-operation random assay at four devices is at the exact-ILP size cap
	// and keeps branch and bound busy for far longer than the test window.
	a := RandomAssay(14, 3, 1)
	opts := Options{
		Devices: 4, Transport: 10, GridRows: 6, GridCols: 6,
		Engine:       ILPEngine,
		ILPTimeLimit: time.Minute, // cancellation, not the limit, must end it
	}
	ctx, cancel := context.WithCancel(context.Background())
	const after = 50 * time.Millisecond
	time.AfterFunc(after, cancel)
	start := time.Now()
	_, err := SynthesizeContext(ctx, a, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The MILP branch-and-bound loop must observe cancellation promptly (the
	// acceptance bar is ~100 ms; allow slack for loaded CI machines).
	if overshoot := elapsed - after; overshoot > 400*time.Millisecond {
		t.Errorf("synthesis returned %v after cancellation, want ~100ms", overshoot)
	}
}

func TestExploreGridsSweep(t *testing.T) {
	a, opts, err := Benchmark("RA30")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	sweep, err := ExploreGrids(context.Background(), a, opts, GridRange{MinSize: 4, MaxSize: 6, Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 {
		t.Fatalf("got %d sweep points, want 3", len(sweep))
	}
	for i, p := range sweep {
		if want := 4 + i; p.Rows != want || p.Cols != want {
			t.Errorf("point %d is %dx%d, want %dx%d", i, p.Rows, p.Cols, want, want)
		}
		if p.Err != nil {
			t.Errorf("%dx%d: %v", p.Rows, p.Cols, p.Err)
			continue
		}
		// Per-scenario results must match a direct run on the same grid.
		o := opts
		o.GridRows, o.GridCols = p.Rows, p.Cols
		direct, err := Synthesize(a, o)
		if err != nil {
			t.Fatal(err)
		}
		if p.Result.Summary() != direct.Summary() {
			t.Errorf("%dx%d: sweep %q != direct %q", p.Rows, p.Cols, p.Result.Summary(), direct.Summary())
		}
	}

	if _, err := ExploreGrids(context.Background(), a, opts, GridRange{MinSize: 6, MaxSize: 4}); err == nil {
		t.Error("inverted grid range accepted")
	}
}

func TestStageTimingsPublicAPI(t *testing.T) {
	a, opts, err := Benchmark("RA30")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	res, err := Synthesize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	timings := res.StageTimings()
	want := []string{StageSchedule, StageBind, StageArch, StagePhys}
	if len(timings) != len(want) {
		t.Fatalf("got %d stages, want %d", len(timings), len(want))
	}
	for i, name := range want {
		if timings[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, timings[i].Name, name)
		}
	}
	if res.SchedulingTime() != res.StageDuration(StageSchedule) {
		t.Error("SchedulingTime disagrees with the schedule stage duration")
	}
	if res.Transports() == 0 {
		t.Error("no transports recorded for RA30")
	}
	if res.Transports() < res.StoreCount() {
		t.Errorf("Transports %d below stored subset %d", res.Transports(), res.StoreCount())
	}
}
